"""Tests for the protocol registry."""

import pytest

from repro.protocols.base import BackoffProtocol
from repro.protocols.registry import (
    available_protocols,
    get_protocol,
    register_protocol,
)


EXPECTED_BUILTINS = {
    "low-sensing",
    "binary-exponential",
    "polynomial",
    "fixed-probability",
    "slotted-aloha",
    "sawtooth",
    "full-sensing-mw",
}


class TestRegistry:
    def test_all_builtin_protocols_are_registered(self):
        assert EXPECTED_BUILTINS.issubset(set(available_protocols()))

    def test_get_protocol_returns_matching_name(self):
        for name in EXPECTED_BUILTINS:
            protocol = get_protocol(name)
            assert isinstance(protocol, BackoffProtocol)
            assert protocol.name == name

    def test_unknown_protocol_raises_with_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_protocol("does-not-exist")
        assert "low-sensing" in str(excinfo.value)

    def test_registering_duplicate_name_rejected(self):
        name = next(iter(EXPECTED_BUILTINS))
        with pytest.raises(ValueError):
            register_protocol(name, lambda: get_protocol("low-sensing"))

    def test_custom_registration(self):
        from repro.protocols.fixed_probability import FixedProbabilityProtocol

        register_protocol("test-custom-proto", lambda: FixedProbabilityProtocol(0.5))
        protocol = get_protocol("test-custom-proto")
        assert protocol.probability == 0.5

    def test_available_protocols_sorted(self):
        names = list(available_protocols())
        assert names == sorted(names)
