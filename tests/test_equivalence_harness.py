"""Unit tests for the equivalence-harness primitives."""

from __future__ import annotations

from random import Random

import pytest

from repro.analysis.equivalence import (
    EquivalenceReport,
    MetricComparison,
    _compare_means,
    compare_result_sets,
    design_effect,
    ks_2sample,
)


class TestKsTwoSample:
    def test_identical_samples_have_zero_statistic(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = ks_2sample(sample, list(sample))
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_same_distribution_passes(self):
        rng = Random(0)
        a = [rng.gauss(0.0, 1.0) for _ in range(400)]
        b = [rng.gauss(0.0, 1.0) for _ in range(400)]
        assert ks_2sample(a, b).p_value > 0.01

    def test_shifted_distribution_fails(self):
        rng = Random(0)
        a = [rng.gauss(0.0, 1.0) for _ in range(400)]
        b = [rng.gauss(1.0, 1.0) for _ in range(400)]
        assert ks_2sample(a, b).p_value < 1e-6

    def test_disjoint_samples_have_statistic_one(self):
        result = ks_2sample([0.0, 1.0, 2.0], [10.0, 11.0, 12.0])
        assert result.statistic == 1.0
        assert result.p_value < 0.05

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_2sample([], [1.0])

    def test_statistic_matches_hand_computation(self):
        # F1 jumps at 1,2; F2 jumps at 2,3: max gap is 1/2 at x in [1, 2).
        result = ks_2sample([1.0, 2.0], [2.0, 3.0])
        assert result.statistic == pytest.approx(0.5)


class TestDesignEffect:
    def test_independent_clusters_have_unit_design_effect(self):
        rng = Random(1)
        groups = [[rng.gauss(0.0, 1.0) for _ in range(50)] for _ in range(12)]
        # No cluster-level random effect: ICC ≈ 0.  The one-way ANOVA
        # estimator is noisy at 12 clusters, so allow a small positive bias
        # (ICC of a few percent) rather than asserting exactly 1.
        assert design_effect(groups) < 3.0

    def test_strong_clustering_deflates_toward_cluster_count(self):
        rng = Random(2)
        groups = [
            [rng.gauss(0.0, 0.01) + offset for _ in range(50)]
            for offset in (0.0, 5.0, 10.0, 15.0)
        ]
        # Packets within a cluster are nearly identical: ICC ≈ 1, so the
        # design effect approaches the mean cluster size.
        assert design_effect(groups) > 40.0

    def test_degenerate_inputs_fall_back_to_one(self):
        assert design_effect([]) == 1.0
        assert design_effect([[1.0, 2.0, 3.0]]) == 1.0  # single cluster
        assert design_effect([[1.0], [2.0], [3.0]]) == 1.0  # singletons
        assert design_effect([[2.0, 2.0], [2.0, 2.0]]) == 1.0  # zero variance

    def test_corrected_ks_is_more_conservative(self):
        rng = Random(3)
        a = [rng.gauss(0.0, 1.0) for _ in range(600)]
        b = [rng.gauss(0.3, 1.0) for _ in range(600)]
        naive = ks_2sample(a, b)
        corrected = ks_2sample(a, b, n_eff1=60, n_eff2=60)
        assert corrected.statistic == naive.statistic
        assert corrected.p_value > naive.p_value


class TestCompareMeans:
    def test_similar_samples_pass(self):
        comparison = _compare_means(
            "metric", [1.0, 1.1, 0.9], [1.05, 0.95, 1.0], 0.002, 0.0
        )
        assert comparison.passed

    def test_distant_means_fail(self):
        comparison = _compare_means(
            "metric", [1.0, 1.01, 0.99], [5.0, 5.01, 4.99], 0.002, 0.1
        )
        assert not comparison.passed

    def test_single_replicate_uses_relative_tolerance(self):
        close = _compare_means("metric", [1.0], [1.05], 0.002, 0.1)
        assert close.passed
        far = _compare_means("metric", [1.0], [2.0], 0.002, 0.1)
        assert not far.passed

    def test_zero_variance_identical_means_pass(self):
        comparison = _compare_means("metric", [2.0, 2.0], [2.0, 2.0], 0.002, 0.0)
        assert comparison.passed

    def test_zero_variance_close_means_use_relative_tolerance(self):
        comparison = _compare_means("metric", [2.0, 2.0], [2.1, 2.1], 0.002, 0.15)
        assert comparison.passed

    def test_systematic_bias_with_tight_spread_fails(self):
        # A systematic ~10% bias with tight replicate spread is a clear
        # statistical disagreement (huge z); the relative tolerance must
        # not mask it.
        left = [1.0, 1.001, 0.999, 1.0]
        right = [1.1, 1.101, 1.099, 1.1]
        comparison = _compare_means("metric", left, right, 0.002, 0.15)
        assert not comparison.passed

    def test_modest_mean_gap_within_spread_passes(self):
        # Samples like these routinely come from the *same* heavy-tailed
        # drain-metric distribution (z ~ 1.5); a criterion that rejects
        # them would spuriously fail genuinely equivalent engines, which
        # is exactly what the small Welch alpha protects against.
        left = [0.13, 0.15, 0.14, 0.16, 0.12, 0.14]
        right = [0.15, 0.14, 0.16, 0.17, 0.13, 0.16]
        comparison = _compare_means("metric", left, right, 0.002, 0.0)
        assert comparison.passed
        assert "p=" in comparison.detail


class TestReport:
    def test_passed_requires_all_comparisons(self):
        report = EquivalenceReport(
            comparisons=[
                MetricComparison("a", "ks", True, "fine"),
                MetricComparison("b", "ci-overlap", False, "off"),
            ]
        )
        assert not report.passed
        assert [c.metric for c in report.failures()] == ["b"]

    def test_render_mentions_status_and_metrics(self):
        report = EquivalenceReport(
            comparisons=[MetricComparison("throughput", "ks", True, "D=0")]
        )
        rendered = report.render()
        assert "PASS" in rendered
        assert "throughput" in rendered

    def test_empty_result_sets_rejected(self):
        with pytest.raises(ValueError):
            compare_result_sets([], [])
