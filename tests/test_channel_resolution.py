"""Tests for slot resolution and per-slot actions."""

import pytest

from repro.channel.actions import Action, ActionKind
from repro.channel.channel import MultipleAccessChannel
from repro.channel.feedback import Feedback, SlotOutcome


class TestAction:
    def test_sleep_does_not_access_channel(self):
        assert not Action.sleep().accesses_channel

    def test_listen_accesses_channel(self):
        assert Action.listen().accesses_channel

    def test_send_accesses_channel(self):
        assert Action.send().accesses_channel

    def test_kind_predicates(self):
        assert Action.send().is_send
        assert Action.listen().is_listen
        assert Action.sleep().is_sleep
        assert not Action.send().is_listen

    def test_constructors_return_singletons(self):
        assert Action.sleep() is Action.sleep()
        assert Action.send() is Action.send()

    def test_kinds_are_distinct(self):
        kinds = {Action.sleep().kind, Action.listen().kind, Action.send().kind}
        assert kinds == {ActionKind.SLEEP, ActionKind.LISTEN, ActionKind.SEND}


class TestChannelResolution:
    def setup_method(self):
        self.channel = MultipleAccessChannel()

    def test_no_senders_is_empty(self):
        resolution = self.channel.resolve([])
        assert resolution.outcome is SlotOutcome.EMPTY
        assert resolution.winner is None
        assert resolution.feedback is Feedback.EMPTY

    def test_single_sender_succeeds(self):
        resolution = self.channel.resolve([42])
        assert resolution.outcome is SlotOutcome.SUCCESS
        assert resolution.winner == 42
        assert resolution.feedback is Feedback.SUCCESS

    def test_two_senders_collide(self):
        resolution = self.channel.resolve([1, 2])
        assert resolution.outcome is SlotOutcome.COLLISION
        assert resolution.winner is None
        assert resolution.feedback is Feedback.NOISE

    def test_many_senders_collide(self):
        resolution = self.channel.resolve(list(range(10)))
        assert resolution.outcome is SlotOutcome.COLLISION
        assert resolution.num_senders == 10

    def test_jammed_empty_slot_is_noisy(self):
        resolution = self.channel.resolve([], jammed=True)
        assert resolution.outcome is SlotOutcome.JAMMED
        assert resolution.feedback is Feedback.NOISE

    def test_jamming_destroys_single_sender(self):
        # A packet that sends during a jammed slot collides and stays.
        resolution = self.channel.resolve([7], jammed=True)
        assert resolution.outcome is SlotOutcome.JAMMED
        assert resolution.winner is None

    def test_jamming_with_many_senders(self):
        resolution = self.channel.resolve([1, 2, 3], jammed=True)
        assert resolution.outcome is SlotOutcome.JAMMED
        assert resolution.jammed

    def test_duplicate_senders_rejected(self):
        with pytest.raises(ValueError):
            self.channel.resolve([1, 1])

    def test_senders_are_preserved(self):
        resolution = self.channel.resolve([3, 1, 2])
        assert set(resolution.senders) == {1, 2, 3}
