"""Tests for the vectorized sensing tier (LSB / Sawtooth / full-sensing MW).

Three layers of checking, from exact to statistical:

* **state-machine identity** — driving the scalar ``PacketState`` objects
  with the *vector engine's own coins* (same trichotomy thresholds, same
  per-replication feedback) must reproduce the vector results bit-for-bit.
  This proves the kernels implement exactly the scalar protocol logic, so
  any residual vector-vs-scalar difference is the random-stream layout —
  which is the vector engine's documented contract;
* **seeded randomized-grid equivalence** — a deterministic sample of
  protocol × arrivals × jammer × window-size configurations through the
  full statistical harness (Welch + KS + bit-identical repeat);
* **conservation invariants** — listens accounted per packet and in the
  collector, accesses = sends + listens, budgets respected.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.adversary.arrivals import BatchArrivals, PeriodicBurstArrivals, PoissonArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BernoulliJamming, BurstJamming, NoJamming, PeriodicJamming
from repro.channel.feedback import Feedback, FeedbackReport
from repro.core.low_sensing import DecoupledLowSensingBackoff, LowSensingBackoff
from repro.core.parameters import LowSensingParameters
from repro.experiments.plan import RunSpec, factory
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.sawtooth import SawtoothBackoff
from repro.sim.vector import VectorSimulator
from repro.sim.vector.protocols import LowSensingKernel, make_protocol_kernel
from repro.sim.vector.rng import CoinBlocks, VectorStreams


def packet_tuples(result):
    return [
        (p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens)
        for p in result.packets
    ]


# ---------------------------------------------------------------------------
# State-machine identity: scalar PacketStates driven by the vector coins
# ---------------------------------------------------------------------------


def reference_run(protocol, n, seed, max_slots, thresholds):
    """Re-run one replication with scalar PacketStates on the vector coins.

    ``thresholds(state) -> (t_send, t_listen)`` maps a scalar packet state
    to the single-coin trichotomy the kernels use: ``u < t_send`` sends,
    ``t_send <= u < t_listen`` listens, the rest sleeps.
    """
    streams = VectorStreams([seed])
    coins = CoinBlocks(streams, n)
    states = [protocol.new_packet_state() for _ in range(n)]
    active = list(range(n))
    sends = [0] * n
    listens = [0] * n
    departed: dict[int, int] = {}
    running = np.ones(1, dtype=bool)
    slot = 0
    while slot < max_slots and (slot == 0 or active):
        row = coins.coins(slot, running)[0]
        senders, listeners = [], []
        for index in active:
            t_send, t_listen = thresholds(states[index])
            if row[index] < t_send:
                senders.append(index)
            elif row[index] < t_listen:
                listeners.append(index)
        if len(senders) == 1:
            winner, feedback = senders[0], Feedback.SUCCESS
        elif senders:
            winner, feedback = None, Feedback.NOISE
        else:
            winner, feedback = None, Feedback.EMPTY
        for index in senders:
            sends[index] += 1
            states[index].observe(
                FeedbackReport(feedback=feedback, sent=True, succeeded=index == winner),
                None,
            )
        for index in listeners:
            listens[index] += 1
            states[index].observe(FeedbackReport(feedback=feedback, sent=False), None)
        for index in active:
            if index not in senders and index not in listeners:
                states[index].observe(
                    FeedbackReport(feedback=None, sent=False), None
                )
        if winner is not None:
            active.remove(winner)
            departed[winner] = slot
        slot += 1
    return [
        (index, 0, departed.get(index), sends[index], listens[index])
        for index in range(n)
    ]


class TestKernelsMatchScalarStateMachines:
    """Same coins + scalar protocol logic == vector results, bit-for-bit."""

    def test_full_sensing_mw(self):
        protocol = FullSensingMultiplicativeWeights()

        def thresholds(state):
            return state.probability, 1.0  # sends or listens, never sleeps

        for seed in (3, 11, 42):
            vector = VectorSimulator(
                protocol, BatchArrivals(10), NoJamming(), seeds=[seed], max_slots=600
            ).run()[0]
            assert packet_tuples(vector) == reference_run(
                protocol, 10, seed, 600, thresholds
            )

    def test_sawtooth(self):
        protocol = SawtoothBackoff(initial_window=4.0)

        def thresholds(state):
            return 1.0 / state.window, 1.0 / state.window  # send or sleep

        for seed in (3, 11, 42):
            vector = VectorSimulator(
                protocol, BatchArrivals(12), NoJamming(), seeds=[seed], max_slots=800
            ).run()[0]
            assert packet_tuples(vector) == reference_run(
                protocol, 12, seed, 800, thresholds
            )

    def test_low_sensing(self):
        protocol = LowSensingBackoff()

        def thresholds(state):
            access = state.access_probability()
            return access * state._send_given_access, access

        for seed in (3, 11):
            vector = VectorSimulator(
                protocol, BatchArrivals(10), NoJamming(), seeds=[seed], max_slots=4000
            ).run()[0]
            assert packet_tuples(vector) == reference_run(
                protocol, 10, seed, 4000, thresholds
            )

    def test_decoupled_low_sensing(self):
        protocol = DecoupledLowSensingBackoff()

        def thresholds(state):
            send = state.sending_probability()
            return send, send + (1.0 - send) * state.access_probability()

        for seed in (3, 11):
            vector = VectorSimulator(
                protocol, BatchArrivals(10), NoJamming(), seeds=[seed], max_slots=4000
            ).run()[0]
            assert packet_tuples(vector) == reference_run(
                protocol, 10, seed, 4000, thresholds
            )


class TestLowSensingKernelMath:
    """The kernel's window updates match LowSensingParameters exactly."""

    def test_thresholds_and_updates_track_the_scalar_state(self):
        params = LowSensingParameters(c=1.0, w_min=100.0)
        protocol = LowSensingBackoff(params=params)
        kernel = make_protocol_kernel(protocol, 1, 1)
        assert isinstance(kernel, LowSensingKernel)
        state = protocol.new_packet_state()
        cell = np.ones((1, 1), dtype=bool)
        empty = np.array([True])
        noise = np.array([False])
        no_rows = np.array([False])
        sent = np.zeros((1, 1), dtype=bool)

        def assert_in_sync():
            assert kernel._window[0, 0] == pytest.approx(state.window, rel=1e-12)
            assert kernel._send_threshold[0, 0] == pytest.approx(
                state.sending_probability(), rel=1e-12
            )
            assert kernel._listen_threshold[0, 0] == pytest.approx(
                state.access_probability(), rel=1e-12
            )

        assert_in_sync()
        # A run of noisy slots (listener hears NOISE): backoff each time.
        for _ in range(12):
            kernel.on_feedback(no_rows, empty, sent, cell, cell)
            state.observe(FeedbackReport(feedback=Feedback.NOISE, sent=False), None)
            assert_in_sync()
        # Then silence: back on, clamped at w_min.
        for _ in range(20):
            kernel.on_feedback(empty, noise, sent, cell, cell)
            state.observe(FeedbackReport(feedback=Feedback.EMPTY, sent=False), None)
            assert_in_sync()
        assert kernel._window[0, 0] == pytest.approx(params.w_min)


# ---------------------------------------------------------------------------
# Seeded randomized-grid statistical equivalence
# ---------------------------------------------------------------------------


def _grid_cases():
    """A deterministic sample of the sensing configuration grid.

    The grid spans protocol (with varying window parameters) × arrivals ×
    jammer; the sample is drawn once with a fixed seed so the sweep is
    reproducible, and each drawn case runs through the full statistical
    harness.
    """
    rng = random.Random(20260731)
    protocols = [
        LowSensingBackoff(),
        LowSensingBackoff(params=LowSensingParameters(c=1.0, w_min=100.0)),
        DecoupledLowSensingBackoff(),
        SawtoothBackoff(initial_window=4.0),
        SawtoothBackoff(initial_window=16.0),
        FullSensingMultiplicativeWeights(),
        FullSensingMultiplicativeWeights(initial_probability=0.1, p_max=0.3),
    ]
    arrivals = [
        factory(BatchArrivals, 30),
        factory(PoissonArrivals, rate=0.02, horizon=600),
        factory(PeriodicBurstArrivals, burst_size=6, period=120, num_bursts=4),
    ]
    jammers = [
        factory(NoJamming),
        factory(BernoulliJamming, probability=0.05, budget=20),
        factory(PeriodicJamming, period=7, budget=40),
        factory(BurstJamming, start=15, length=25),
    ]
    cases = []
    for protocol in protocols:
        arrival = rng.choice(arrivals)
        jammer = rng.choice(jammers)
        cases.append(
            pytest.param(
                protocol,
                factory(CompositeAdversary, arrival, jammer),
                id=f"{protocol.name}-{arrival.fn.__name__}-{jammer.fn.__name__}",
            )
        )
    return cases


class TestRandomizedGridEquivalence:
    @pytest.mark.parametrize("protocol,adversary", _grid_cases())
    def test_sensing_kernel_statistically_matches_scalar(self, protocol, adversary):
        from repro.analysis.equivalence import verify_vector_equivalence

        specs = [
            RunSpec(protocol=protocol, adversary=adversary, seed=seed, max_slots=20_000)
            for seed in range(1, 9)
        ]
        report = verify_vector_equivalence(specs)
        assert report.passed, report.render()


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------


class TestSensingInvariants:
    @pytest.mark.parametrize(
        "protocol",
        [
            LowSensingBackoff(),
            FullSensingMultiplicativeWeights(),
            SawtoothBackoff(),
        ],
        ids=["low-sensing", "full-sensing-mw", "sawtooth"],
    )
    def test_listen_accounting_and_conservation(self, protocol):
        results = VectorSimulator(
            protocol,
            BatchArrivals(25),
            BernoulliJamming(probability=0.05, budget=15),
            seeds=[3, 7, 13],
            max_slots=30_000,
        ).run()
        for result in results:
            collector = result.collector
            assert collector.num_arrivals == len(result.packets)
            assert collector.total_sends == sum(p.sends for p in result.packets)
            assert collector.total_listens == sum(p.listens for p in result.packets)
            assert collector.num_jammed <= 15
            assert (
                collector.total_channel_accesses
                == collector.total_sends + collector.total_listens
            )
        if protocol.name == "sawtooth":
            assert all(r.collector.total_listens == 0 for r in results)
        else:
            # The sensing protocols listen; the accounting must show it.
            assert all(r.collector.total_listens > 0 for r in results)

    def test_repeat_runs_bit_identical(self):
        def run_batch():
            return VectorSimulator(
                LowSensingBackoff(),
                BatchArrivals(30),
                BernoulliJamming(probability=0.04, budget=12),
                seeds=[11, 23, 47],
            ).run()

        for first, second in zip(run_batch(), run_batch()):
            assert first.collector.backlog_series == second.collector.backlog_series
            assert packet_tuples(first) == packet_tuples(second)

    def test_sensing_with_capacity_growth(self):
        # Poisson arrivals overflow the initial capacity guess mid-run;
        # sensing state (thresholds, listen counters) must grow with it.
        def run_batch():
            return VectorSimulator(
                FullSensingMultiplicativeWeights(),
                PoissonArrivals(rate=0.2, horizon=1000),
                NoJamming(),
                seeds=[1, 2, 3],
                max_slots=8_000,
            ).run()

        first, second = run_batch(), run_batch()
        assert max(r.num_arrivals for r in first) > 64
        for a, b in zip(first, second):
            assert packet_tuples(a) == packet_tuples(b)

    def test_drains_like_scalar_on_single_packet(self):
        # One packet, MW: sends with p=0.25 until its first success.
        results = VectorSimulator(
            FullSensingMultiplicativeWeights(),
            BatchArrivals(1),
            NoJamming(),
            seeds=[5],
        ).run()
        packet = results[0].packets[0]
        assert packet.departure_slot is not None
        assert packet.sends == 1 + 0  # the winning send is its only send
        assert packet.listens == results[0].num_slots - 1
