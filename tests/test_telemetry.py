"""Tests for the observability layer (`repro.telemetry`).

The load-bearing invariants:

* telemetry is RNG- and result-inert — store fingerprints with telemetry
  on and off are bit-identical on serial, processes, and vector backends;
* the JSONL sink stays readable after a SIGKILL mid-campaign (at most a
  truncated final line, tolerated on read);
* `telemetry summarize` reproduces a per-phase breakdown covering >= 95%
  of total run wall-clock for an E1 sweep and a campaign run;
* pool worker failures surface with job index and spec identity.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.campaigns import campaign_status_rows, start_campaign
from repro.campaigns.runner import estimate_eta_seconds
from repro.cli import main
from repro.exec import make_backend
from repro.exec.backends import ProcessPoolBackend, WorkerJobError, job_identity
from repro.experiments.plan import RunSpec, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.scenarios.spec import scenario_from_dict
from repro.store import ResultsStore
from repro.telemetry import (
    NULL_SESSION,
    JsonlSink,
    MemorySink,
    ProgressSink,
    TelemetrySession,
    activated,
    current,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
)

SCENARIO = {
    "id": "telemetry-mixed",
    "title": "Telemetry test scenario",
    "protocols": ["binary-exponential", "low-sensing"],
    "max_slots": 1500,
    "replications": 3,
    "arrivals": {"kind": "batch", "n": 12},
}


def _specs(count=4, n=15, max_slots=3000):
    return [
        RunSpec(
            protocol=BinaryExponentialBackoff(),
            adversary=factory(CompositeAdversary, factory(BatchArrivals, n)),
            seed=seed,
            max_slots=max_slots,
        )
        for seed in range(1, count + 1)
    ]


class TestCoreSession:
    def test_disabled_session_is_the_default_and_a_noop(self):
        tele = current()
        assert tele is NULL_SESSION
        assert not tele.enabled
        with tele.span("simulate", kind="phase"):
            pass
        tele.counter("x", 1)
        tele.event("y")
        tele.progress("z", 1, 2)  # all silently dropped

    def test_activated_scopes_the_session_and_closes_it(self):
        mem = MemorySink()
        session = TelemetrySession([mem])
        with activated(session) as tele:
            assert current() is session is tele
            tele.counter("inside", 1)
        assert current() is NULL_SESSION
        kinds = [record["ev"] for record in mem.records]
        assert kinds[0] == "session_start"
        assert kinds[-1] == "session_end"
        assert "counter" in kinds

    def test_activated_none_is_a_noop_block(self):
        with activated(None) as tele:
            assert tele is NULL_SESSION

    def test_span_times_a_region_and_survives_exceptions(self):
        mem = MemorySink()
        session = TelemetrySession([mem])
        with pytest.raises(RuntimeError):
            with session.span("simulate", kind="phase", backend="serial"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        (span,) = mem.spans("simulate")
        assert span["dur"] >= 0.01
        assert span["attrs"] == {"kind": "phase", "backend": "serial"}

    def test_every_event_carries_the_correlation_id(self):
        mem = MemorySink()
        session = TelemetrySession([mem], run_id="abc123")
        session.counter("c", 2)
        session.event("e", reason="because")
        session.close()
        assert all(record["run"] == "abc123" for record in mem.records)
        assert mem.counter_total("c") == 2

    def test_close_is_idempotent(self):
        mem = MemorySink()
        session = TelemetrySession([mem])
        session.close()
        session.close()
        assert [r["ev"] for r in mem.records].count("session_end") == 1


class TestJsonlSink:
    def test_each_event_is_one_flushed_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(path)])
        session.counter("c", 1)
        # Flushed per line: visible before close.
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # session_start + counter
        assert all(json.loads(line) for line in lines)
        session.close()

    def test_append_mode_keeps_prior_sessions(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            TelemetrySession([JsonlSink(path)], run_id=None).close()
        events = read_events(path)
        assert len({event["run"] for event in events}) == 2

    def test_reader_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(path)])
        session.counter("c", 1)
        session.close()
        whole = read_events(path)
        # Simulate a kill mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        truncated = read_events(path)
        assert truncated == whole[:-1]

    def test_summarize_file_reads_from_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(path)])
        with session.span("sweep", kind="root", backend="serial"):
            with session.span("simulate", kind="phase", backend="serial"):
                pass
        session.close()
        summary = summarize_file(path)
        assert summary["roots"] and summary["phases"]


class TestProgressSink:
    def test_renders_rate_and_eta_then_newline_on_completion(self):
        stream = io.StringIO()
        sink = ProgressSink(stream)
        session = TelemetrySession([sink])
        session.progress("units", 1, 4)
        time.sleep(0.01)
        session.progress("units", 4, 4)
        session.close()
        output = stream.getvalue()
        assert "units: 1/4" in output
        assert "units: 4/4" in output
        assert output.endswith("\n")

    def test_ignores_non_progress_events(self):
        stream = io.StringIO()
        session = TelemetrySession([ProgressSink(stream)])
        session.counter("c", 1)
        session.event("e")
        session.close()
        assert stream.getvalue() == ""


class TestJsonlSinkUnderProcessPool:
    def test_pool_run_writes_one_json_object_per_line(self, tmp_path):
        """Worker spans funnel through the parent session: the JSONL file
        must stay one-object-per-line even with a multiprocessing pool."""
        path = tmp_path / "pool.jsonl"
        with activated(TelemetrySession([JsonlSink(path)])):
            make_backend("processes", workers=2).run(_specs(3))
        lines = path.read_text().splitlines()
        assert lines, "pool run must emit telemetry"
        records = [json.loads(line) for line in lines]  # every line parses alone
        assert all(isinstance(record, dict) for record in records)
        spans = [r for r in records if r["ev"] == "span" and r["name"] == "simulate"]
        assert len(spans) == 3
        assert all(span["attrs"]["backend"] == "processes" for span in spans)
        events = read_events(path)
        assert events == records

    def test_read_events_on_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_events(path) == []


class TestProgressSinkSessions:
    class _Tty(io.StringIO):
        def isatty(self):
            return True

    def test_resume_rate_counts_executed_work_not_skips(self):
        """A resumed campaign reports the rate of work done *this session*:
        50 checkpoint skips with zero executed runs is a 0.0/s rate, not a
        5000/s fantasy that would project a nonsense ETA."""
        stream = io.StringIO()
        session = TelemetrySession([ProgressSink(stream)])
        session.progress("units", 50, 100, executed=0)
        time.sleep(0.01)
        session.progress("units", 100, 100, executed=0)
        session.close()
        final = stream.getvalue().strip().splitlines()[-1]
        assert final.startswith("units: 100/100")
        assert "(0.0/s" in final

    def test_executed_rate_drives_the_eta(self):
        stream = io.StringIO()
        sink = ProgressSink(stream)
        sink.min_interval_notty = 0.0
        session = TelemetrySession([sink])
        session.progress("units", 50, 100, executed=0)
        time.sleep(0.01)
        session.progress("units", 52, 100, executed=2)
        session.close()
        mid = stream.getvalue().strip().splitlines()[-1]
        assert mid.startswith("units: 52/100")
        assert "eta" in mid and "eta --" not in mid

    def test_non_tty_writes_plain_periodic_lines(self):
        stream = io.StringIO()
        session = TelemetrySession([ProgressSink(stream)])
        session.progress("specs", 1, 4)
        session.progress("specs", 2, 4)  # throttled: within the 2s cadence
        session.progress("specs", 4, 4)  # final always paints
        session.close()
        output = stream.getvalue()
        assert "\r" not in output
        lines = output.splitlines()
        assert lines == [line for line in lines if line]  # newline-terminated
        assert lines[0].startswith("specs: 1/4")
        assert lines[-1].startswith("specs: 4/4")
        assert "specs: 2/4" not in output

    def test_tty_repaints_with_carriage_returns(self):
        stream = self._Tty()
        sink = ProgressSink(stream)
        sink.min_interval = 0.0
        session = TelemetrySession([sink])
        session.progress("specs", 1, 4)
        session.progress("specs", 4, 4)
        session.close()
        output = stream.getvalue()
        assert output.startswith("\r")
        assert output.endswith("\n")


class TestSummarize:
    def test_phase_unit_root_partition_and_coverage(self):
        events = [
            {"ev": "span", "run": "r", "name": "sweep", "dur": 1.0,
             "attrs": {"kind": "root", "backend": "vector"}},
            {"ev": "span", "run": "r", "name": "simulate", "dur": 0.7,
             "attrs": {"kind": "phase", "backend": "vector"}},
            {"ev": "span", "run": "r", "name": "commit", "dur": 0.25,
             "attrs": {"kind": "phase", "backend": "vector"}},
            {"ev": "span", "run": "r", "name": "unit", "dur": 0.9,
             "attrs": {"kind": "unit", "backend": "vector"}},
            {"ev": "counter", "run": "r", "name": "slots", "value": 10, "attrs": {}},
            {"ev": "counter", "run": "r", "name": "slots", "value": 5, "attrs": {}},
            {"ev": "event", "run": "r", "name": "vector_fallback",
             "attrs": {"reason": "trace"}},
        ]
        summary = summarize_events(events)
        assert summary["coverage"] == pytest.approx(0.95)
        assert summary["counters"] == {"slots": 15.0}
        assert summary["events"] == {"vector_fallback[trace]": 1}
        # Unit spans are reported but never double-count into coverage.
        assert summary["units"][0]["total"] == pytest.approx(0.9)
        rendered = render_summary(summary)
        assert "95.0%" in rendered
        assert "vector_fallback[trace]" in rendered

    def test_event_rows_name_the_specs_that_fell_back(self):
        events = [
            {"ev": "event", "run": "r", "name": "vector_fallback",
             "attrs": {"reason": "trace", "spec": f"spec{i:02d}"}}
            for i in range(6)
        ]
        summary = summarize_events(events)
        assert summary["events"] == {"vector_fallback[trace]": 6}
        assert summary["event_specs"]["vector_fallback[trace]"] == [
            f"spec{i:02d}" for i in range(6)
        ]
        rendered = render_summary(summary)
        assert "specs: spec00, spec01, spec02, spec03 +2 more" in rendered

    def test_no_roots_means_no_coverage_claim(self):
        summary = summarize_events(
            [{"ev": "span", "run": "r", "name": "simulate", "dur": 0.1,
              "attrs": {"kind": "phase"}}]
        )
        assert summary["coverage"] is None
        assert "no root spans" in render_summary(summary)


class TestBackendInstrumentation:
    def test_serial_backend_emits_build_simulate_and_counters(self):
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            results = make_backend("serial").run(_specs(2))
        assert len(mem.spans("build")) == 2
        assert len(mem.spans("simulate")) == 2
        assert mem.counter_total("slots_simulated") == sum(
            r.num_slots for r in results
        )
        assert mem.counter_total("packets_processed") == sum(
            len(r.packets) for r in results
        )

    def test_processes_backend_attributes_workers_and_queue_wait(self):
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            results = make_backend("processes", workers=2).run(_specs(3))
        spans = mem.spans("simulate")
        assert len(spans) == 3
        for span in spans:
            assert span["attrs"]["backend"] == "processes"
            assert span["attrs"]["worker_pid"] > 0
            assert span["attrs"]["queue_wait"] >= 0.0
        assert mem.counter_total("slots_simulated") == sum(
            r.num_slots for r in results
        )

    def test_vector_backend_emits_batch_events_and_hot_loop_counters(self):
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            results = make_backend("vector").run(_specs(3))
        (batch,) = mem.events("vector_batch")
        assert batch["attrs"]["jobs"] == 3
        assert mem.counter_total("replications") == 3
        assert mem.counter_total("slots_simulated") == sum(
            r.num_slots for r in results
        )
        assert mem.counter_total("kernel_invocations") == max(
            r.num_slots for r in results
        )
        assert mem.spans("simulate") and mem.spans("finalize")

    def test_vector_fallback_event_names_the_reason(self):
        from repro.adversary.arrivals import TraceArrivals

        trace_spec = RunSpec(
            protocol=BinaryExponentialBackoff(),
            adversary=factory(
                CompositeAdversary, factory(TraceArrivals, (3, 0, 2, 1))
            ),
            seed=1,
            max_slots=500,
        )
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            make_backend("vector").run([trace_spec])
        (event,) = mem.events("vector_fallback")
        assert event["attrs"]["reason"]
        assert event["attrs"]["spec"] == trace_spec.cache_key()[:10]

    def test_cache_backend_emits_lookup_event_and_commit_spans(self, tmp_path):
        mem = MemorySink()
        specs = _specs(2)
        with activated(TelemetrySession([mem])):
            with make_backend("serial", cache_dir=tmp_path / "c") as backend:
                backend.run(specs)
                backend.run(specs)
        lookups = mem.events("cache_lookup")
        assert [e["attrs"]["hits"] for e in lookups] == [0, 2]
        assert any(
            span["attrs"].get("op") == "store" for span in mem.spans("commit")
        )

    def test_results_identical_with_telemetry_on_and_off(self):
        specs = _specs(3)
        baseline = [r.summary() for r in make_backend("serial").run(specs)]
        with activated(TelemetrySession([MemorySink()])):
            instrumented = [r.summary() for r in make_backend("serial").run(specs)]
        assert instrumented == baseline
        vec_base = [r.summary() for r in make_backend("vector").run(specs)]
        with activated(TelemetrySession([MemorySink()])):
            vec_inst = [r.summary() for r in make_backend("vector").run(specs)]
        assert vec_inst == vec_base


class TestWorkerJobError:
    def test_worker_failure_names_job_and_spec(self):
        specs = _specs(3)
        bad = RunSpec(
            protocol=BinaryExponentialBackoff(),
            adversary=factory(CompositeAdversary, factory(BatchArrivals, -1)),
            seed=9,
            max_slots=500,
        )
        jobs = [specs[0], bad, specs[1]]
        with pytest.raises(WorkerJobError) as excinfo:
            ProcessPoolBackend(workers=2).run(jobs)
        error = excinfo.value
        assert error.job_index == 1
        assert "BinaryExponentialBackoff" in error.job_identity
        assert "seed=9" in error.job_identity
        assert error.cause_type == "ValueError"
        assert "job 1" in str(error)

    def test_worker_error_survives_pickling(self):
        error = WorkerJobError(3, "Proto spec=abcd seed=7", "ValueError", "bad n")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.job_index, clone.job_identity) == (3, "Proto spec=abcd seed=7")
        assert str(clone) == str(error)

    def test_job_identity_prefers_hash_protocol_and_seed(self):
        (spec,) = _specs(1)
        identity = job_identity(spec)
        assert "BinaryExponentialBackoff" in identity
        assert f"spec={spec.cache_key()[:12]}" in identity
        assert "seed=1" in identity


class TestFingerprintInvariance:
    """--telemetry on/off must be bit-identical on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "processes", "vector"])
    def test_campaign_fingerprints_match_with_telemetry_on_and_off(
        self, tmp_path, backend
    ):
        fingerprints = {}
        for mode in ("off", "on"):
            store = ResultsStore(tmp_path / f"{backend}-{mode}")
            session = (
                TelemetrySession([MemorySink(), JsonlSink(tmp_path / f"{mode}.jsonl")])
                if mode == "on"
                else None
            )
            with activated(session):
                start_campaign(
                    store,
                    scenario_from_dict(SCENARIO),
                    backend_name=backend,
                    workers=2 if backend == "processes" else None,
                )
            fingerprints[mode] = store.fingerprint()
            store.close()
        assert fingerprints["on"] == fingerprints["off"]


class TestCampaignUnitSpans:
    def test_unit_spans_persist_and_status_reports_timing(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        outcome = start_campaign(
            store, scenario_from_dict(SCENARIO), backend_name="vector"
        )
        units = store.campaign_units(outcome.campaign_id)
        assert units, "campaign units must persist without telemetry"
        assert all(unit["elapsed_seconds"] >= 0 for unit in units)
        assert all(unit["started_at"] for unit in units)
        (row,) = campaign_status_rows(store)
        assert row["units_done"] == len(units)
        assert row["slowest_unit_seconds"] >= 0
        assert row["eta_seconds"] is None  # complete campaigns have no ETA
        store.close()

    def test_interrupted_campaign_reports_eta(self, tmp_path):
        from repro.campaigns import CampaignInterrupted

        store = ResultsStore(tmp_path / "s")
        with pytest.raises(CampaignInterrupted):
            start_campaign(
                store,
                scenario_from_dict(SCENARIO),
                backend_name="serial",
                fail_after_units=1,
            )
        (row,) = campaign_status_rows(store)
        assert row["status"] == "running"
        assert row["units_done"] == 1
        assert row["eta_seconds"] is not None and row["eta_seconds"] > 0

    def test_eta_estimator_edge_cases(self):
        assert estimate_eta_seconds(0, 10, 0.0) is None
        assert estimate_eta_seconds(10, 10, 5.0) is None
        assert estimate_eta_seconds(5, 10, 5.0) == pytest.approx(5.0)

    def test_campaign_show_notes_include_unit_timing(self, tmp_path):
        from repro.campaigns import campaign_report

        store = ResultsStore(tmp_path / "s")
        outcome = start_campaign(
            store, scenario_from_dict(SCENARIO), backend_name="serial"
        )
        report = campaign_report(store, outcome.campaign_id)
        notes = "\n".join(report.notes)
        assert "timing:" in notes
        assert "slowest unit" in notes
        store.close()


class TestCliTelemetry:
    def test_e1_sweep_summarize_covers_95_percent(self, tmp_path, capsys):
        tele_path = tmp_path / "sweep.jsonl"
        assert main(
            ["run", "e1", "--scale", "smoke", "--telemetry", str(tele_path)]
        ) == 0
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(tele_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["coverage"] >= 0.95
        assert any(row["name"] == "sweep" for row in summary["roots"])

    def test_campaign_run_summarize_covers_95_percent(self, tmp_path, capsys):
        tele_path = tmp_path / "campaign.jsonl"
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(json.dumps(SCENARIO))
        assert main(
            [
                "campaign", "run", str(scenario_file),
                "--backend", "vector",
                "--store", str(tmp_path / "store"),
                "--telemetry", str(tele_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(tele_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["coverage"] >= 0.95
        assert any(row["name"] == "campaign" for row in summary["roots"])
        assert summary["units"], "campaign unit spans should be in the file"

    def test_summarize_table_renders(self, tmp_path, capsys):
        tele_path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(tele_path)])
        with session.span("sweep", kind="root", backend="serial"):
            with session.span("simulate", kind="phase", backend="serial"):
                pass
        session.close()
        assert main(["telemetry", "summarize", str(tele_path)]) == 0
        output = capsys.readouterr().out
        assert "coverage: phases explain" in output

    def test_summarize_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", str(tmp_path / "nope.jsonl")])

    def test_progress_flag_renders_on_stderr(self, tmp_path, capsys):
        assert main(["run", "e1", "--scale", "smoke", "--progress"]) == 0
        assert "serial jobs" in capsys.readouterr().err


class TestSigkillSafety:
    def test_jsonl_readable_after_sigkill_mid_campaign(self, tmp_path):
        """A killed campaign leaves a parseable telemetry file behind."""
        scenario_file = tmp_path / "scenario.json"
        scenario = dict(SCENARIO)
        scenario["max_slots"] = 200_000
        scenario["replications"] = 6
        scenario["arrivals"] = {"kind": "poisson", "rate": 0.4}
        scenario_file.write_text(json.dumps(scenario))
        tele_path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                str(scenario_file),
                "--backend", "serial",
                "--checkpoint-every", "1",
                "--store", str(tmp_path / "store"),
                "--telemetry", str(tele_path),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if tele_path.exists() and tele_path.stat().st_size > 0:
                break
            if process.poll() is not None:
                break
            time.sleep(0.02)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        assert tele_path.exists(), "sink must create the file on session start"
        events = read_events(tele_path)
        assert events, "events written before the kill must parse"
        assert events[0]["ev"] == "session_start"
        # The summary is computable from whatever survived.
        summarize_events(events)
