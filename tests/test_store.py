"""Tests for the durable results store (`repro.store`)."""

from __future__ import annotations

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.exec.backends import SerialBackend
from repro.experiments.plan import RunSpec, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.store import ResultsStore


def _spec(seed=1, n=10):
    return RunSpec(
        protocol=BinaryExponentialBackoff(),
        adversary=factory(CompositeAdversary, factory(BatchArrivals, n)),
        seed=seed,
        max_slots=2000,
    )


def _run(spec):
    return SerialBackend().run([spec])[0]


class TestRunsRegistry:
    def test_put_get_roundtrip(self, tmp_path):
        spec = _spec(seed=3)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            artifact_hash = store.put_run(
                spec.cache_key(), 3, "scalar", result, source="campaign"
            )
            assert len(artifact_hash) == 64
            stored = store.get_run(spec.cache_key(), 3, "scalar")
            assert stored is not None
            assert stored.artifact_hash == artifact_hash
            assert stored.source == "campaign"
            assert stored.protocol == result.summary().protocol
            assert stored.metrics["throughput"] == result.throughput
            loaded = store.get_result(spec.cache_key(), 3, "scalar")
            assert loaded is not None
            assert loaded.summary() == result.summary()

    def test_put_is_idempotent(self, tmp_path):
        spec = _spec(seed=5)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            store.put_run(spec.cache_key(), 5, "scalar", result)
            first = store.get_run(spec.cache_key(), 5, "scalar")
            store.put_run(spec.cache_key(), 5, "scalar", result)
            assert store.stats()["runs"] == 1
            # The original row survives untouched (provenance included).
            assert store.get_run(spec.cache_key(), 5, "scalar") == first

    def test_layouts_are_distinct_namespaces(self, tmp_path):
        spec = _spec(seed=7)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            store.put_run(spec.cache_key(), 7, "scalar", result)
            assert store.get_run(spec.cache_key(), 7, "vector:abc") is None
            assert store.has_run(spec.cache_key(), 7, "scalar")

    def test_identical_results_share_one_artifact(self, tmp_path):
        spec = _spec(seed=9)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            first = store.put_run(spec.cache_key(), 9, "scalar", result)
            second = store.put_run("other-spec-hash", 9, "scalar", result)
            assert first == second
            assert store.stats()["artifacts"] == 1
            assert store.stats()["runs"] == 2

    def test_corrupt_artifact_reads_as_missing_and_heals(self, tmp_path):
        spec = _spec(seed=11)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            store.put_run(spec.cache_key(), 11, "scalar", result)
            for artifact in store.artifacts_dir.rglob("*.pkl"):
                artifact.write_bytes(b"damaged")
            assert store.get_result(spec.cache_key(), 11, "scalar") is None
            # Re-putting the same run heals the damaged artifact in place.
            store.put_run(spec.cache_key(), 11, "scalar", result)
            healed = store.get_result(spec.cache_key(), 11, "scalar")
            assert healed is not None and healed.summary() == result.summary()


class TestSchemaVersion:
    def test_future_schema_store_is_refused_loudly(self, tmp_path):
        from repro.store import StoreError

        root = tmp_path / "store"
        with ResultsStore(root) as store:
            with store._connection:
                store._connection.execute(
                    "UPDATE meta SET value = '99' WHERE key = 'schema'"
                )
        with pytest.raises(StoreError, match="schema v99"):
            ResultsStore(root)


class TestFingerprint:
    def test_invariant_to_provenance(self, tmp_path):
        spec = _spec(seed=2)
        result = _run(spec)
        with ResultsStore(tmp_path / "a") as a, ResultsStore(tmp_path / "b") as b:
            a.put_run(spec.cache_key(), 2, "scalar", result, elapsed_seconds=1.0)
            b.put_run(spec.cache_key(), 2, "scalar", result, elapsed_seconds=99.0)
            assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_content(self, tmp_path):
        spec_a, spec_b = _spec(seed=2), _spec(seed=4)
        with ResultsStore(tmp_path / "a") as a, ResultsStore(tmp_path / "b") as b:
            a.put_run(spec_a.cache_key(), 2, "scalar", _run(spec_a))
            b.put_run(spec_b.cache_key(), 4, "scalar", _run(spec_b))
            assert a.fingerprint() != b.fingerprint()

    def test_empty_stores_agree(self, tmp_path):
        with ResultsStore(tmp_path / "a") as a, ResultsStore(tmp_path / "b") as b:
            assert a.fingerprint() == b.fingerprint()

    def test_source_and_scenario_hash_are_provenance_not_identity(self, tmp_path):
        """A run first stored by the cache and later adopted by a campaign
        must fingerprint like one the campaign executed itself."""
        spec = _spec(seed=6)
        result = _run(spec)
        with ResultsStore(tmp_path / "a") as a, ResultsStore(tmp_path / "b") as b:
            a.put_run(spec.cache_key(), 6, "scalar", result, source="cache")
            b.put_run(
                spec.cache_key(),
                6,
                "scalar",
                result,
                source="campaign",
                scenario_hash="abc123",
            )
            assert a.fingerprint() == b.fingerprint()

    def test_put_repairs_row_whose_artifact_hash_drifted(self, tmp_path):
        spec = _spec(seed=8)
        result = _run(spec)
        with ResultsStore(tmp_path / "store") as store:
            store.put_run(spec.cache_key(), 8, "scalar", result, source="campaign")
            with store._connection:
                store._connection.execute(
                    "UPDATE runs SET artifact_hash = 'deadbeef'"
                )
            store.put_run(spec.cache_key(), 8, "scalar", result)
            repaired = store.get_run(spec.cache_key(), 8, "scalar")
            assert repaired.artifact_hash != "deadbeef"
            # Provenance of the original row survives the repair.
            assert repaired.source == "campaign"
            loaded = store.get_result(spec.cache_key(), 8, "scalar")
            assert loaded is not None and loaded.summary() == result.summary()


class TestStatsAndPrune:
    def _age_rows(self, store, days):
        """Backdate every run row by ``days`` (prune cuts on created_at)."""
        import datetime

        cutoff = (
            datetime.datetime.now(datetime.timezone.utc)
            - datetime.timedelta(days=days)
        ).isoformat(timespec="seconds")
        with store._connection:
            store._connection.execute("UPDATE runs SET created_at = ?", (cutoff,))

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            for seed in (1, 2, 3):
                spec = _spec(seed=seed)
                store.put_run(spec.cache_key(), seed, "scalar", _run(spec))
            stats = store.stats()
            assert stats["runs"] == 3
            assert stats["runs_by_source"] == {"cache": 3}
            assert stats["artifacts"] == 3
            assert stats["artifact_bytes"] > 0
            assert stats["db_bytes"] > 0

    def test_prune_by_age(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            spec = _spec(seed=1)
            store.put_run(spec.cache_key(), 1, "scalar", _run(spec))
            self._age_rows(store, days=40)
            fresh = _spec(seed=2)
            store.put_run(fresh.cache_key(), 2, "scalar", _run(fresh))
            removed = store.prune(older_than_days=30)
            assert removed["removed_runs"] == 1
            assert removed["removed_artifacts"] == 1
            assert store.stats()["runs"] == 1
            assert store.has_run(fresh.cache_key(), 2, "scalar")

    def test_prune_by_max_bytes_drops_oldest_first(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            specs = [_spec(seed=seed) for seed in (1, 2, 3)]
            for days_old, spec in zip((3, 2, 1), specs):
                store.put_run(spec.cache_key(), spec.seed, "scalar", _run(spec))
            # Stagger ages: seed 1 oldest.
            import datetime

            with store._connection:
                for days_old, spec in zip((3, 2, 1), specs):
                    stamp = (
                        datetime.datetime.now(datetime.timezone.utc)
                        - datetime.timedelta(days=days_old)
                    ).isoformat(timespec="seconds")
                    store._connection.execute(
                        "UPDATE runs SET created_at = ? WHERE seed = ?",
                        (stamp, spec.seed),
                    )
            total = store.stats()["artifact_bytes"]
            removed = store.prune(max_bytes=total - 1)
            assert removed["removed_runs"] == 1
            assert not store.has_run(specs[0].cache_key(), 1, "scalar")
            assert store.has_run(specs[2].cache_key(), 3, "scalar")

    def test_prune_max_bytes_accounts_for_shared_artifacts(self, tmp_path):
        """Two rows sharing one content-addressed artifact: the shared
        bytes count as long as any referent survives, so max_bytes=0 must
        doom both rows and empty the store."""
        with ResultsStore(tmp_path / "store") as store:
            spec = _spec(seed=1)
            result = _run(spec)
            store.put_run(spec.cache_key(), 1, "scalar", result)
            store.put_run("other-spec-hash", 1, "scalar", result)
            assert store.stats()["artifacts"] == 1  # shared
            self._age_rows(store, days=40)
            removed = store.prune(older_than_days=30, max_bytes=0)
            assert removed["removed_runs"] == 2
            assert removed["removed_artifacts"] == 1
            stats = store.stats()
            assert stats["runs"] == 0 and stats["artifact_bytes"] == 0

    def test_prune_protects_campaign_runs(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            spec = _spec(seed=1)
            store.put_run(spec.cache_key(), 1, "scalar", _run(spec), source="campaign")
            store.create_campaign(
                "c1",
                scenario_id="s",
                scenario_hash="h",
                definition=None,
                scale="smoke",
                seeds=[1],
                backend="serial",
                total_runs=1,
            )
            store.record_campaign_unit(
                "c1",
                [(0, 0, "binary-exponential", spec.cache_key(), 1, "scalar")],
                elapsed_seconds=0.1,
            )
            self._age_rows(store, days=400)
            removed = store.prune(older_than_days=1, max_bytes=0)
            assert removed["removed_runs"] == 0
            assert store.has_run(spec.cache_key(), 1, "scalar")

    def test_prune_dry_run_touches_nothing(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            spec = _spec(seed=1)
            store.put_run(spec.cache_key(), 1, "scalar", _run(spec))
            self._age_rows(store, days=40)
            removed = store.prune(older_than_days=30, dry_run=True)
            assert removed["removed_runs"] == 1
            assert removed["removed_artifacts"] == 1
            assert removed["dry_run"] is True
            assert store.stats()["runs"] == 1
            assert store.stats()["artifacts"] == 1
