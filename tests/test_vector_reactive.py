"""Tests for the feedback-coupled vector kernels and vectorized outputs.

The reactive/adaptive adversaries close a feedback loop with the protocol
state (they read each slot's senders, contention, or backlog), so their
vector kernels run inside the engine's lockstep slot loop.  Three layers of
checking, mirroring ``test_vector_sensing``:

* **state-machine identity** — driving the *scalar adversary objects*
  (``ReactiveSuccessJammer``, ``ReactiveTargetedJammer``,
  ``BacklogCouplingAdversary``) with the vector engine's own coins must
  reproduce the vector results bit-for-bit.  This proves the kernels
  implement exactly the scalar jam/injection logic, so any residual
  vector-vs-scalar difference is the random-stream layout — the vector
  engine's documented contract;
* **trace/potential output parity** — with ``collect_trace`` and
  ``collect_potential`` on, the materialised :class:`SlotRecord` and
  :class:`PotentialSample` sequences must equal a scalar-semantics
  reconstruction on the same coins, field for field;
* **statistical equivalence** — every new kernel runs through the
  Welch + design-effect-corrected KS harness against the serial engine,
  plus mega-stack bit-identity and budget invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import AdversarialQueueingArrivals, BatchArrivals
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BudgetedRandomJamming,
    NoJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.analysis.equivalence import verify_vector_equivalence
from repro.channel.feedback import Feedback, FeedbackReport, SlotOutcome
from repro.channel.trace import SlotRecord
from repro.core.low_sensing import LowSensingBackoff
from repro.core.potential import PotentialCoefficients, PotentialTracker
from repro.experiments.plan import RunSpec, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.sim.vector import VectorSimulator
from repro.sim.vector.rng import CoinBlocks, VectorStreams


def packet_tuples(result):
    return [
        (p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens)
        for p in result.packets
    ]


# ---------------------------------------------------------------------------
# State-machine identity: scalar adversaries driven by the vector coins
# ---------------------------------------------------------------------------


def reference_run(adversary, seed, max_slots, capacity, *, collect=False):
    """Re-run one replication with scalar components on the vector coins.

    ``adversary`` is a *scalar* adversary object (a fresh instance — the
    reference mutates its budget counters).  The protocol is binary
    exponential backoff, whose single-coin decision (``u < 1/w`` sends)
    matches the vector layout exactly, so scalar adversary logic plus the
    vector coin stream must reproduce the vector engine bit-for-bit.

    Returns ``(packets, records, samples)``; the latter two are only
    populated when ``collect`` is true, and follow the scalar engine's slot
    order exactly: view snapshot pre-injection, arrivals, base jam, packet
    decisions, reactive jam, resolution, feedback, departure, then the
    potential sampled from post-departure windows.
    """
    protocol = BinaryExponentialBackoff()
    streams = VectorStreams([seed])
    coins = CoinBlocks(streams, capacity)
    states: dict[int, object] = {}
    active: list[int] = []
    sends: dict[int, int] = {}
    arrival_slots: dict[int, int] = {}
    departed: dict[int, int] = {}
    next_id = 0
    running = np.ones(1, dtype=bool)
    records: list[SlotRecord] = []
    tracker = PotentialTracker(PotentialCoefficients()) if collect else None
    slot = 0
    while slot < max_slots and (active or not adversary.arrivals_exhausted(slot)):
        contention = sum(states[i].sending_probability() for i in active)
        view = SystemView(
            slot=slot, active_packets=tuple(active), contention=contention
        )
        num_arrivals = adversary.arrivals(view, None)
        arrival_ids = tuple(range(next_id, next_id + num_arrivals))
        for packet_id in arrival_ids:
            states[packet_id] = protocol.new_packet_state()
            sends[packet_id] = 0
            arrival_slots[packet_id] = slot
            active.append(packet_id)
        next_id += num_arrivals
        active_before = len(active)
        jammed = bool(adversary.jam(view, None))
        row = coins.coins(slot, running)[0]
        senders = [i for i in active if row[i] < states[i].sending_probability()]
        if not jammed and adversary.reactive:
            jammed = bool(adversary.reactive_jam(view, tuple(senders), None))
        if jammed:
            outcome, winner, feedback = SlotOutcome.JAMMED, None, Feedback.NOISE
        elif len(senders) == 1:
            outcome, winner, feedback = SlotOutcome.SUCCESS, senders[0], Feedback.SUCCESS
        elif senders:
            outcome, winner, feedback = SlotOutcome.COLLISION, None, Feedback.NOISE
        else:
            outcome, winner, feedback = SlotOutcome.EMPTY, None, Feedback.EMPTY
        for index in senders:
            sends[index] += 1
            if index != winner:
                states[index].observe(
                    FeedbackReport(feedback=feedback, sent=True), None
                )
        if winner is not None:
            active.remove(winner)
            departed[winner] = slot
        if collect:
            sample = tracker.record(slot, [states[i].window for i in active])
            records.append(
                SlotRecord(
                    slot=slot,
                    outcome=outcome,
                    jammed=jammed,
                    arrivals=arrival_ids,
                    senders=tuple(senders),
                    listeners=(),
                    winner=winner,
                    active_before=active_before,
                    active_after=len(active),
                    contention=contention,
                    potential=sample.potential,
                )
            )
        slot += 1
    packets = [
        (index, arrival_slots[index], departed.get(index), sends[index], 0)
        for index in sorted(arrival_slots)
    ]
    return packets, records, tracker.samples if tracker else []


class TestReactiveKernelsMatchScalarAdversaries:
    """Same coins + scalar adversary logic == vector results, bit-for-bit."""

    def test_reactive_success(self):
        for seed in (3, 11, 42):
            vector = VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(12),
                ReactiveSuccessJammer(budget=6),
                seeds=[seed],
                max_slots=4000,
            ).run()[0]
            adversary = CompositeAdversary(
                BatchArrivals(12), ReactiveSuccessJammer(budget=6)
            )
            packets, _, _ = reference_run(adversary, seed, 4000, 12)
            assert packet_tuples(vector) == packets
            assert vector.collector.num_jammed == 6

    def test_reactive_targeted(self):
        for seed, target in ((3, 0), (11, 2), (42, 5)):
            vector = VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(8),
                ReactiveTargetedJammer(budget=4, target_index=target),
                seeds=[seed],
                max_slots=4000,
            ).run()[0]
            adversary = CompositeAdversary(
                BatchArrivals(8),
                ReactiveTargetedJammer(budget=4, target_index=target),
            )
            packets, _, _ = reference_run(adversary, seed, 4000, 8)
            assert packet_tuples(vector) == packets

    def test_backlog_coupling(self):
        for seed in (3, 11, 42):
            adversary = BacklogCouplingAdversary(
                target_backlog=3, total_packets=12, jam_budget=4
            )
            vector = VectorSimulator(
                BinaryExponentialBackoff(),
                adversary,
                adversary,
                seeds=[seed],
                max_slots=4000,
            ).run()[0]
            reference = BacklogCouplingAdversary(
                target_backlog=3, total_packets=12, jam_budget=4
            )
            packets, _, _ = reference_run(reference, seed, 4000, 12)
            assert packet_tuples(vector) == packets


# ---------------------------------------------------------------------------
# Vectorized trace / potential outputs
# ---------------------------------------------------------------------------


class TestTraceAndPotentialParity:
    def test_slot_records_match_scalar_semantics_bit_for_bit(self):
        for seed in (3, 11):
            vector = VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(10),
                ReactiveSuccessJammer(budget=4),
                seeds=[seed],
                max_slots=4000,
                collect_trace=True,
                collect_potential=True,
            ).run()[0]
            adversary = CompositeAdversary(
                BatchArrivals(10), ReactiveSuccessJammer(budget=4)
            )
            _, records, samples = reference_run(
                adversary, seed, 4000, 10, collect=True
            )
            assert vector.trace is not None
            assert vector.potential is not None
            assert list(vector.trace.records) == records
            assert list(vector.potential.samples) == samples

    def test_trace_only_run_omits_potential(self):
        result = VectorSimulator(
            BinaryExponentialBackoff(),
            BatchArrivals(5),
            NoJamming(),
            seeds=[7],
            max_slots=2000,
            collect_trace=True,
        ).run()[0]
        assert result.trace is not None
        assert result.potential is None
        assert all(record.potential is None for record in result.trace.records)
        assert result.trace.num_arrivals == 5
        assert result.trace.num_successes == 5

    def test_trace_aggregates_are_consistent_with_the_collector(self):
        result = VectorSimulator(
            BinaryExponentialBackoff(),
            BatchArrivals(15),
            ReactiveSuccessJammer(budget=5),
            seeds=[13],
            max_slots=8000,
            collect_trace=True,
        ).run()[0]
        trace = result.trace
        collector = result.collector
        assert trace.num_slots == result.num_slots
        assert trace.num_successes == collector.num_successes
        assert trace.num_jammed == collector.num_jammed == 5
        assert trace.num_arrivals == collector.num_arrivals
        sends_in_trace = sum(len(record.senders) for record in trace.records)
        # Winners stay in their slot's sender tuple, so the trace's send
        # count is the collector's total.
        assert sends_in_trace == collector.total_sends

    def test_windowless_protocol_yields_zero_potential(self):
        from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights

        result = VectorSimulator(
            FullSensingMultiplicativeWeights(),
            BatchArrivals(6),
            NoJamming(),
            seeds=[5],
            max_slots=2000,
            collect_potential=True,
        ).run()[0]
        assert result.potential is not None
        assert len(result.potential.samples) == result.num_slots
        assert all(sample.potential == 0.0 for sample in result.potential.samples)

    def test_collected_outputs_do_not_perturb_the_run(self):
        def run(**flags):
            return VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(12),
                ReactiveSuccessJammer(budget=4),
                seeds=[3, 7],
                max_slots=4000,
                **flags,
            ).run()

        bare = run()
        collected = run(collect_trace=True, collect_potential=True)
        for a, b in zip(bare, collected):
            assert packet_tuples(a) == packet_tuples(b)
            assert a.collector.backlog_series == b.collector.backlog_series


# ---------------------------------------------------------------------------
# Statistical equivalence per kernel
# ---------------------------------------------------------------------------


def _equivalence_cases():
    return [
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, 30),
                factory(ReactiveSuccessJammer, budget=15),
            ),
            id="reactive-success",
        ),
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, 20),
                factory(ReactiveTargetedJammer, budget=10, target_index=0),
            ),
            id="reactive-targeted",
        ),
        pytest.param(
            LowSensingBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, 25),
                factory(AdaptiveContentionJammer, budget=12, target_regime="good"),
            ),
            id="adaptive-contention",
        ),
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, 25),
                factory(BudgetedRandomJamming, budget=20, horizon=400),
            ),
            id="budgeted-random",
        ),
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(
                    AdversarialQueueingArrivals,
                    rate=0.2,
                    granularity=50,
                    horizon=500,
                    placement="uniform",
                ),
                factory(NoJamming),
            ),
            id="queueing-uniform",
        ),
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(
                    AdversarialQueueingArrivals,
                    rate=0.2,
                    granularity=50,
                    horizon=500,
                    placement="random",
                ),
                factory(NoJamming),
            ),
            id="queueing-random",
        ),
        pytest.param(
            BinaryExponentialBackoff(),
            factory(
                BacklogCouplingAdversary,
                target_backlog=3,
                total_packets=40,
                jam_budget=10,
            ),
            id="backlog-coupling",
        ),
    ]


class TestReactiveKernelEquivalence:
    @pytest.mark.parametrize("protocol,adversary", _equivalence_cases())
    def test_kernel_statistically_matches_scalar(self, protocol, adversary):
        specs = [
            RunSpec(protocol=protocol, adversary=adversary, seed=seed, max_slots=20_000)
            for seed in range(1, 9)
        ]
        report = verify_vector_equivalence(specs)
        assert report.passed, report.render()

    def test_equivalence_with_collected_outputs(self):
        specs = [
            RunSpec(
                protocol=BinaryExponentialBackoff(),
                adversary=factory(
                    CompositeAdversary,
                    factory(BatchArrivals, 25),
                    factory(ReactiveSuccessJammer, budget=10),
                ),
                seed=seed,
                max_slots=20_000,
                collect_trace=True,
                collect_potential=True,
            )
            for seed in range(1, 9)
        ]
        report = verify_vector_equivalence(specs)
        assert report.passed, report.render()


# ---------------------------------------------------------------------------
# Mega-stack bit-identity and invariants
# ---------------------------------------------------------------------------


def _spec(protocol, adversary, seed, **options):
    return RunSpec(
        protocol=protocol, adversary=adversary, seed=seed, max_slots=8000, **options
    )


class TestMegaStackBitIdentity:
    def test_reactive_groups_stack_bit_identically(self):
        groups = [
            [
                _spec(
                    BinaryExponentialBackoff(),
                    factory(
                        CompositeAdversary,
                        factory(BatchArrivals, 15),
                        factory(ReactiveSuccessJammer, budget=budget),
                    ),
                    seed,
                )
                for seed in (1, 2, 3)
            ]
            for budget in (5, 9)
        ]
        mega = VectorSimulator.from_spec_groups(groups).run()
        flat = iter(mega)
        for specs in groups:
            for expected in VectorSimulator.from_specs(specs).run():
                got = next(flat)
                assert packet_tuples(got) == packet_tuples(expected)
                assert (
                    got.collector.backlog_series == expected.collector.backlog_series
                )

    def test_budget_respected_per_replication(self):
        results = VectorSimulator(
            BinaryExponentialBackoff(),
            BatchArrivals(20),
            ReactiveSuccessJammer(budget=7),
            seeds=[1, 2, 3, 4],
            max_slots=8000,
        ).run()
        for result in results:
            assert result.collector.num_jammed <= 7

    def test_repeat_runs_bit_identical(self):
        def run_batch():
            return VectorSimulator(
                LowSensingBackoff(),
                BatchArrivals(20),
                AdaptiveContentionJammer(budget=8, target_regime="good"),
                seeds=[11, 23, 47],
                max_slots=20_000,
            ).run()

        for first, second in zip(run_batch(), run_batch()):
            assert first.collector.backlog_series == second.collector.backlog_series
            assert packet_tuples(first) == packet_tuples(second)
