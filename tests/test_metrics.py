"""Tests for metrics: collector, throughput, energy, latency, and summaries."""

import pytest

from repro.channel.feedback import SlotOutcome
from repro.metrics.collectors import MetricsCollector, SlotObservation
from repro.metrics.energy import PacketEnergy, energy_statistics
from repro.metrics.latency import PacketLatency, latency_statistics
from repro.metrics.summary import RunSummary, aggregate_summaries
from repro.metrics.throughput import (
    ThroughputAccounting,
    implicit_throughput_series,
    overall_throughput,
    throughput_series,
)


def observation(slot, outcome=SlotOutcome.EMPTY, jammed=False, arrivals=0,
                active_before=1, active_after=1, senders=0, listeners=0):
    return SlotObservation(
        slot=slot,
        outcome=outcome,
        jammed=jammed,
        arrivals=arrivals,
        active_before=active_before,
        active_after=active_after,
        num_senders=senders,
        num_listeners=listeners,
    )


class TestMetricsCollector:
    def test_counts_accumulate(self):
        collector = MetricsCollector()
        collector.observe(observation(0, arrivals=3, active_before=3, active_after=3))
        collector.observe(
            observation(1, outcome=SlotOutcome.SUCCESS, active_before=3, active_after=2, senders=1)
        )
        collector.observe(
            observation(2, outcome=SlotOutcome.JAMMED, jammed=True, active_before=2, active_after=2)
        )
        assert collector.num_slots == 3
        assert collector.num_arrivals == 3
        assert collector.num_successes == 1
        assert collector.num_jammed == 1
        assert collector.num_jammed_active == 1
        assert collector.num_active_slots == 3
        assert collector.backlog == 2

    def test_out_of_order_slots_rejected(self):
        collector = MetricsCollector()
        collector.observe(observation(0))
        with pytest.raises(ValueError):
            collector.observe(observation(5))

    def test_jamming_inactive_slot_not_counted_as_active_jam(self):
        collector = MetricsCollector()
        collector.observe(
            observation(0, outcome=SlotOutcome.JAMMED, jammed=True, active_before=0, active_after=0)
        )
        assert collector.num_jammed == 1
        assert collector.num_jammed_active == 0
        assert collector.num_active_slots == 0

    def test_series_collection(self):
        collector = MetricsCollector()
        collector.observe(observation(0, arrivals=2, active_before=2, active_after=2))
        collector.observe(
            observation(1, outcome=SlotOutcome.SUCCESS, active_before=2, active_after=1, senders=1)
        )
        assert collector.backlog_series == [2, 1]
        assert collector.cumulative_arrivals == [2, 2]
        assert collector.cumulative_successes == [0, 1]
        assert collector.cumulative_active_slots == [1, 2]

    def test_channel_access_totals(self):
        collector = MetricsCollector()
        collector.observe(observation(0, senders=2, listeners=3))
        assert collector.total_sends == 2
        assert collector.total_listens == 3
        assert collector.total_channel_accesses == 5


class TestThroughput:
    def test_throughput_without_jamming(self):
        accounting = ThroughputAccounting(
            arrivals=10, successes=10, jammed_active=0, active_slots=40
        )
        assert accounting.throughput == pytest.approx(0.25)
        assert accounting.implicit_throughput == pytest.approx(0.25)

    def test_jamming_counts_in_both_metrics(self):
        accounting = ThroughputAccounting(
            arrivals=10, successes=5, jammed_active=5, active_slots=40
        )
        assert accounting.throughput == pytest.approx(10 / 40)
        assert accounting.implicit_throughput == pytest.approx(15 / 40)

    def test_no_active_slots_is_vacuously_one(self):
        accounting = ThroughputAccounting(
            arrivals=0, successes=0, jammed_active=0, active_slots=0
        )
        assert accounting.throughput == 1.0

    def test_more_successes_than_arrivals_rejected(self):
        with pytest.raises(ValueError):
            ThroughputAccounting(arrivals=1, successes=2, jammed_active=0, active_slots=5)

    def test_overall_throughput_helper(self):
        assert overall_throughput(successes=20, jammed_active=0, active_slots=80) == 0.25

    def test_series_computation(self):
        successes = [0, 1, 1, 2]
        jams = [0, 0, 1, 1]
        active = [1, 2, 3, 4]
        series = throughput_series(successes, jams, active)
        assert series == [0.0, 0.5, 2 / 3, 0.75]

    def test_implicit_series_before_first_active_slot(self):
        series = implicit_throughput_series([0, 5], [0, 0], [0, 1])
        assert series[0] == 1.0
        assert series[1] == 5.0

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            throughput_series([1], [1, 2], [1, 2])


class TestEnergyStatistics:
    def packets(self):
        return [
            PacketEnergy(packet_id=0, sends=2, listens=10, departed=True),
            PacketEnergy(packet_id=1, sends=1, listens=5, departed=True),
            PacketEnergy(packet_id=2, sends=4, listens=40, departed=False),
        ]

    def test_mean_and_max(self):
        stats = energy_statistics(self.packets())
        assert stats.num_packets == 3
        assert stats.mean_accesses == pytest.approx((12 + 6 + 44) / 3)
        assert stats.max_accesses == 44

    def test_departed_only_filter(self):
        stats = energy_statistics(self.packets(), departed_only=True)
        assert stats.num_packets == 2
        assert stats.max_accesses == 12

    def test_sends_and_listens_split(self):
        stats = energy_statistics(self.packets())
        assert stats.mean_sends == pytest.approx(7 / 3)
        assert stats.mean_listens == pytest.approx(55 / 3)

    def test_quantiles_ordered(self):
        stats = energy_statistics(self.packets())
        assert stats.p50_accesses <= stats.p95_accesses <= stats.p99_accesses <= stats.max_accesses

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            energy_statistics([])


class TestLatencyStatistics:
    def test_basic(self):
        records = [
            PacketLatency(packet_id=0, arrival_slot=0, latency=5),
            PacketLatency(packet_id=1, arrival_slot=0, latency=15),
            PacketLatency(packet_id=2, arrival_slot=3, latency=None),
        ]
        stats = latency_statistics(records)
        assert stats.num_delivered == 2
        assert stats.num_undelivered == 1
        assert stats.mean_latency == pytest.approx(10.0)
        assert stats.makespan == 15

    def test_all_undelivered_rejected(self):
        with pytest.raises(ValueError):
            latency_statistics([PacketLatency(0, 0, None)])


def make_summary(seed: int, throughput: float, protocol: str = "low-sensing") -> RunSummary:
    return RunSummary(
        protocol=protocol,
        seed=seed,
        num_arrivals=100,
        num_delivered=100,
        num_active_slots=300,
        num_jammed_active=0,
        num_slots=320,
        throughput=throughput,
        implicit_throughput=throughput,
        mean_accesses=50.0,
        max_accesses=100.0,
        mean_sends=3.0,
        mean_listens=47.0,
        max_backlog=100,
        makespan=250.0,
        drained=True,
    )


class TestSummaryAggregation:
    def test_mean_min_max(self):
        aggregated = aggregate_summaries(
            [make_summary(1, 0.2), make_summary(2, 0.3), make_summary(3, 0.4)]
        )
        assert aggregated["throughput"].mean == pytest.approx(0.3)
        assert aggregated["throughput"].minimum == pytest.approx(0.2)
        assert aggregated["throughput"].maximum == pytest.approx(0.4)
        assert aggregated["throughput"].std > 0.0

    def test_mixed_protocols_rejected(self):
        with pytest.raises(ValueError):
            aggregate_summaries(
                [make_summary(1, 0.2), make_summary(2, 0.3, protocol="other")]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_summaries([])
