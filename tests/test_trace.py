"""Tests for execution traces."""

import pytest

from repro.channel.feedback import SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord


def make_record(slot: int, outcome=SlotOutcome.EMPTY, active=1, **kwargs) -> SlotRecord:
    defaults = dict(
        slot=slot,
        outcome=outcome,
        jammed=kwargs.pop("jammed", False),
        arrivals=kwargs.pop("arrivals", ()),
        senders=kwargs.pop("senders", ()),
        listeners=kwargs.pop("listeners", ()),
        winner=kwargs.pop("winner", None),
        active_before=active,
        active_after=kwargs.pop("active_after", active),
    )
    defaults.update(kwargs)
    return SlotRecord(**defaults)


class TestSlotRecord:
    def test_active_flag(self):
        assert make_record(0, active=3).is_active
        assert not make_record(0, active=0).is_active

    def test_success_flag(self):
        assert make_record(0, outcome=SlotOutcome.SUCCESS).is_success
        assert not make_record(0, outcome=SlotOutcome.COLLISION).is_success


class TestExecutionTrace:
    def test_records_must_start_at_slot_zero(self):
        trace = ExecutionTrace()
        with pytest.raises(ValueError):
            trace.append(make_record(5))

    def test_records_must_be_consecutive(self):
        trace = ExecutionTrace()
        trace.append(make_record(0))
        with pytest.raises(ValueError):
            trace.append(make_record(2))

    def test_len_iteration_and_indexing(self):
        trace = ExecutionTrace()
        for slot in range(5):
            trace.append(make_record(slot))
        assert len(trace) == 5
        assert [r.slot for r in trace] == list(range(5))
        assert trace[3].slot == 3

    def test_aggregate_counts(self):
        trace = ExecutionTrace()
        trace.append(make_record(0, outcome=SlotOutcome.SUCCESS, winner=1, senders=(1,)))
        trace.append(make_record(1, outcome=SlotOutcome.COLLISION, senders=(1, 2)))
        trace.append(make_record(2, outcome=SlotOutcome.JAMMED, jammed=True))
        trace.append(make_record(3, outcome=SlotOutcome.EMPTY, active=0))
        assert trace.num_slots == 4
        assert trace.num_successes == 1
        assert trace.num_collisions == 1
        assert trace.num_jammed == 1
        assert trace.num_empty == 1
        assert trace.num_active_slots == 3

    def test_arrival_count(self):
        trace = ExecutionTrace()
        trace.append(make_record(0, arrivals=(0, 1, 2)))
        trace.append(make_record(1, arrivals=(3,)))
        assert trace.num_arrivals == 4

    def test_window_slicing(self):
        trace = ExecutionTrace()
        for slot in range(10):
            trace.append(make_record(slot))
        window = trace.window(3, 6)
        assert [r.slot for r in window] == [3, 4, 5]

    def test_window_rejects_bad_bounds(self):
        trace = ExecutionTrace()
        with pytest.raises(ValueError):
            trace.window(-1, 2)
        with pytest.raises(ValueError):
            trace.window(5, 2)

    def test_active_slot_indices(self):
        trace = ExecutionTrace()
        trace.append(make_record(0, active=0))
        trace.append(make_record(1, active=2))
        trace.append(make_record(2, active=0))
        assert trace.active_slot_indices() == [1]

    def test_outcome_counts_cover_all_outcomes(self):
        trace = ExecutionTrace()
        trace.append(make_record(0, outcome=SlotOutcome.SUCCESS))
        counts = trace.outcome_counts()
        assert set(counts) == set(SlotOutcome)
        assert counts[SlotOutcome.SUCCESS] == 1
        assert counts[SlotOutcome.JAMMED] == 0
