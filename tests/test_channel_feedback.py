"""Tests for the ternary feedback alphabet and slot outcomes."""

import pytest

from repro.channel.feedback import (
    SLEEP_REPORT,
    Feedback,
    FeedbackReport,
    SlotOutcome,
)


class TestFeedback:
    def test_alphabet_has_exactly_three_symbols(self):
        assert {f.name for f in Feedback} == {"EMPTY", "SUCCESS", "NOISE"}

    def test_empty_is_not_busy(self):
        assert not Feedback.EMPTY.is_busy

    def test_success_is_busy(self):
        assert Feedback.SUCCESS.is_busy

    def test_noise_is_busy(self):
        assert Feedback.NOISE.is_busy


class TestSlotOutcome:
    def test_empty_maps_to_empty_feedback(self):
        assert SlotOutcome.EMPTY.feedback is Feedback.EMPTY

    def test_success_maps_to_success_feedback(self):
        assert SlotOutcome.SUCCESS.feedback is Feedback.SUCCESS

    def test_collision_maps_to_noise(self):
        assert SlotOutcome.COLLISION.feedback is Feedback.NOISE

    def test_jammed_maps_to_noise(self):
        # A listener cannot distinguish jamming from a collision.
        assert SlotOutcome.JAMMED.feedback is Feedback.NOISE

    def test_wasted_slots_are_empty_and_collision_only(self):
        assert SlotOutcome.EMPTY.is_wasted
        assert SlotOutcome.COLLISION.is_wasted
        assert not SlotOutcome.SUCCESS.is_wasted
        assert not SlotOutcome.JAMMED.is_wasted


class TestFeedbackReport:
    def test_sender_report_requires_feedback(self):
        with pytest.raises(ValueError):
            FeedbackReport(feedback=None, sent=True)

    def test_success_requires_sending(self):
        with pytest.raises(ValueError):
            FeedbackReport(feedback=Feedback.SUCCESS, sent=False, succeeded=True)

    def test_sleep_report_learns_nothing(self):
        assert SLEEP_REPORT.feedback is None
        assert not SLEEP_REPORT.sent
        assert not SLEEP_REPORT.succeeded

    def test_listener_report(self):
        report = FeedbackReport(feedback=Feedback.EMPTY, sent=False)
        assert report.feedback is Feedback.EMPTY
        assert not report.succeeded

    def test_successful_sender_report(self):
        report = FeedbackReport(feedback=Feedback.SUCCESS, sent=True, succeeded=True)
        assert report.sent and report.succeeded

    def test_reports_are_immutable(self):
        report = FeedbackReport(feedback=Feedback.NOISE, sent=True)
        with pytest.raises(AttributeError):
            report.sent = False
