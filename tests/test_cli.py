"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E5", "E9", "A1"):
            assert exp_id in out
        assert "benchmarks/bench_e1_throughput_batch.py" in out


class TestRun:
    def test_run_writes_json_report(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            ["run", "e1", "--scale", "smoke", "--seeds", "11", "--out", str(out_dir)]
        )
        assert code == 0
        payload = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert payload["experiment"] == "E1"
        assert payload["scale"] == "smoke"
        assert payload["seeds"] == [11]
        assert payload["backend"] == {"backend": "serial"}
        assert payload["elapsed_seconds"] > 0
        assert payload["rows"] and payload["verdicts"]
        rendered = capsys.readouterr().out
        assert "E1: Throughput on batch arrivals" in rendered

    def test_run_processes_backend_with_cache(self, tmp_path):
        out_dir = tmp_path / "results"
        cache_dir = tmp_path / "cache"
        args = [
            "run", "e1",
            "--scale", "smoke",
            "--seeds", "11",
            "--backend", "processes",
            "--workers", "2",
            "--cache-dir", str(cache_dir),
            "--out", str(out_dir),
        ]
        assert main(args) == 0
        first = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert first["backend"]["inner"]["workers"] == 2
        assert list(cache_dir.glob("*.pkl")), "cache should be populated"
        # Second invocation hits the cache and must reproduce the same rows.
        assert main(args) == 0
        second = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert second["rows"] == first["rows"]

    def test_run_vector_backend(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "run", "e1",
                "--scale", "smoke",
                "--seeds", "11,23",
                "--backend", "vector",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        payload = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        backend = payload["backend"]
        assert backend["backend"] == "vector"
        # E1 mixes vectorizable baselines with sensing protocols, so the
        # run must report both a vectorized share and a serial fallback.
        assert backend["vectorized_jobs"] > 0
        assert backend["fallback_jobs"] > 0
        assert backend["fallback"]["backend"] == "serial"
        assert payload["rows"] and payload["verdicts"]

    def test_backend_counters_attributed_per_experiment(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "run", "e1", "e7",
                "--scale", "smoke",
                "--backend", "vector",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        e1 = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        e7 = json.loads((out_dir / "e7.json").read_text(encoding="utf-8"))
        # E7 at smoke scale runs only the (non-vectorizable) low-sensing
        # protocol; its report must not inherit E1's vectorized jobs.
        assert e7["backend"]["vectorized_jobs"] == 0
        assert e7["backend"]["fallback_jobs"] == 3
        assert e1["backend"]["vectorized_jobs"] == 6

    def test_run_bench_out_merges_history(self, tmp_path):
        bench_path = tmp_path / "BENCH_cli.json"
        args = [
            "run", "e1",
            "--scale", "smoke",
            "--seeds", "11",
            "--bench-out", str(bench_path),
        ]
        assert main(args) == 0
        assert main(args) == 0
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
        assert len(payload["E1"]["history"]) == 2
        assert payload["E1"]["latest"]["scale"] == "smoke"
        assert payload["E1"]["latest"]["backend"] == {"backend": "serial"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e42"])

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--seeds", "one,two"])
