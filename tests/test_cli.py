"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E5", "E9", "A1"):
            assert exp_id in out
        assert "benchmarks/bench_e1_throughput_batch.py" in out


class TestRun:
    def test_run_writes_json_report(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            ["run", "e1", "--scale", "smoke", "--seeds", "11", "--out", str(out_dir)]
        )
        assert code == 0
        payload = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert payload["experiment"] == "E1"
        assert payload["scale"] == "smoke"
        assert payload["seeds"] == [11]
        assert payload["backend"] == {"backend": "serial"}
        assert payload["elapsed_seconds"] > 0
        assert payload["rows"] and payload["verdicts"]
        rendered = capsys.readouterr().out
        assert "E1: Throughput on batch arrivals" in rendered

    def test_run_processes_backend_with_cache(self, tmp_path):
        out_dir = tmp_path / "results"
        cache_dir = tmp_path / "cache"
        args = [
            "run", "e1",
            "--scale", "smoke",
            "--seeds", "11",
            "--backend", "processes",
            "--workers", "2",
            "--cache-dir", str(cache_dir),
            "--out", str(out_dir),
        ]
        assert main(args) == 0
        first = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert first["backend"]["inner"]["workers"] == 2
        assert list(cache_dir.glob("*.pkl")), "cache should be populated"
        # Second invocation hits the cache and must reproduce the same rows.
        assert main(args) == 0
        second = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert second["rows"] == first["rows"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e42"])

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--seeds", "one,two"])
