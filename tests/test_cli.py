"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("E1", "E5", "E9", "A1"):
            assert exp_id in out
        assert "benchmarks/bench_e1_throughput_batch.py" in out

    def test_lists_scenarios_too(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Scenarios" in out
        assert "onoff-jamming" in out

    def test_json_listing_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        experiment_ids = [row["id"] for row in payload["experiments"]]
        assert experiment_ids == sorted(experiment_ids)
        assert "E1" in experiment_ids and len(experiment_ids) == 10
        scenarios = payload["scenarios"]
        assert len(scenarios) >= 10
        for row in scenarios:
            assert row["id"] and row["title"]
            assert isinstance(row["protocols"], list)
            assert len(row["content_hash"]) == 64

    def test_json_listing_reports_vectorization(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_id = {row["id"]: row["vectorization"] for row in payload["experiments"]}
        # E1 is entirely on the lockstep engine since the sensing kernels.
        e1 = by_id["E1"]
        assert e1["vectorizable_specs"] == e1["total_specs"] > 0
        assert 0 < e1["mega_batches"] <= e1["vector_groups"]
        assert e1["fallbacks"] == []
        # E6 is reactive and rides the lockstep feedback loop since the
        # reactive kernels; E9's trace/potential groups vectorize too but
        # carry a named mega-batch exclusion.
        e6 = by_id["E6"]
        assert e6["vectorizable_specs"] == e6["total_specs"] > 0
        assert e6["fallbacks"] == []
        assert e6["fallback_histogram"] == {}
        e9 = by_id["E9"]
        assert e9["vectorizable_specs"] == e9["total_specs"] > 0
        assert e9["mega_exclusions"]
        for exclusion in e9["mega_exclusions"]:
            assert "mega-batch" in exclusion["reason"]
        # Scenarios carry the same field.
        for row in payload["scenarios"]:
            assert "vectorization" in row
            assert row["vectorization"]["total_specs"] > 0


class TestExplain:
    def test_explain_prints_table_without_running(self, capsys):
        assert main(["run", "e1", "--scale", "smoke", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "12/12 specs vectorize" in out
        assert "vector kernel" in out
        assert "low-sensing" in out and "sawtooth" in out
        # No execution happened: no report table, no timing line.
        assert "throughput" not in out

    def test_explain_shows_reactive_experiment_on_vector_path(self, capsys):
        assert main(["run", "e6", "--scale", "smoke", "--explain"]) == 0
        out = capsys.readouterr().out
        # E6's reactive jammers ride the lockstep feedback loop.
        assert "fallback: " not in out
        assert "vector kernel" in out

    def test_explain_handles_multiple_ids_and_seeds(self, capsys):
        assert main(
            ["run", "e1", "e9", "--scale", "smoke", "--seeds", "1,2", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out and "[E9]" in out
        assert "fallback: " not in out

    def test_explain_aggregates_fallback_reasons_into_histogram(self, capsys):
        from repro.adversary.arrivals import TraceArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.cli import _fallback_histogram, _print_vectorization_table
        from repro.experiments.plan import SweepPlan, factory
        from repro.protocols.binary_exponential import BinaryExponentialBackoff

        replayed = factory(CompositeAdversary, factory(TraceArrivals, (4, 0, 1)))
        plan = SweepPlan()
        plan.add_group(BinaryExponentialBackoff(), replayed, seeds=[1, 2, 3])
        plan.add_group(
            BinaryExponentialBackoff(initial_window=8.0), replayed, seeds=[4, 5]
        )
        histogram = _fallback_histogram(plan, plan.vector_summary())
        assert list(histogram.values()) == [5]  # 5 specs, one shared reason
        assert "TraceArrivals" in next(iter(histogram))
        _print_vectorization_table("demo", plan, "smoke")
        out = capsys.readouterr().out
        assert "fallback reasons (spec counts):" in out
        assert "   5  " in out


class TestRun:
    def test_run_writes_json_report(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            ["run", "e1", "--scale", "smoke", "--seeds", "11", "--out", str(out_dir)]
        )
        assert code == 0
        payload = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert payload["experiment"] == "E1"
        assert payload["scale"] == "smoke"
        assert payload["seeds"] == [11]
        assert payload["backend"] == {"backend": "serial"}
        assert payload["elapsed_seconds"] > 0
        assert payload["rows"] and payload["verdicts"]
        rendered = capsys.readouterr().out
        assert "E1: Throughput on batch arrivals" in rendered

    def test_run_processes_backend_with_cache(self, tmp_path):
        out_dir = tmp_path / "results"
        cache_dir = tmp_path / "cache"
        args = [
            "run", "e1",
            "--scale", "smoke",
            "--seeds", "11",
            "--backend", "processes",
            "--workers", "2",
            "--cache-dir", str(cache_dir),
            "--out", str(out_dir),
        ]
        assert main(args) == 0
        first = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert first["backend"]["inner"]["workers"] == 2
        assert (cache_dir / "store.db").exists(), "cache store should exist"
        assert list((cache_dir / "artifacts").rglob("*.pkl")), (
            "cache should be populated"
        )
        # Second invocation hits the cache and must reproduce the same rows.
        assert main(args) == 0
        second = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        assert second["rows"] == first["rows"]

    def test_run_vector_backend(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "run", "e1",
                "--scale", "smoke",
                "--seeds", "11,23",
                "--backend", "vector",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        payload = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        backend = payload["backend"]
        assert backend["backend"] == "vector"
        # Since the sensing-tier kernels, every E1 protocol (baselines AND
        # the sensing protocols) runs on the lockstep engine: no fallback.
        assert backend["vectorized_jobs"] > 0
        assert backend["fallback_jobs"] == 0
        assert backend["mega_batches"] > 0
        assert backend["mega_batches"] <= backend["vector_groups"]
        assert backend["fallback"]["backend"] == "serial"
        assert payload["rows"] and payload["verdicts"]

    def test_backend_counters_attributed_per_experiment(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "run", "e1", "e7",
                "--scale", "smoke",
                "--backend", "vector",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        e1 = json.loads((out_dir / "e1.json").read_text(encoding="utf-8"))
        e7 = json.loads((out_dir / "e7.json").read_text(encoding="utf-8"))
        # Counters are attributed per experiment: E7's three low-sensing
        # jammer groups must not inherit E1's twelve vectorized jobs.
        assert e7["backend"]["vectorized_jobs"] == 3
        assert e7["backend"]["fallback_jobs"] == 0
        assert e1["backend"]["vectorized_jobs"] == 12

    def test_run_bench_out_merges_history(self, tmp_path):
        bench_path = tmp_path / "BENCH_cli.json"
        args = [
            "run", "e1",
            "--scale", "smoke",
            "--seeds", "11",
            "--bench-out", str(bench_path),
        ]
        assert main(args) == 0
        assert main(args) == 0
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
        assert len(payload["E1"]["history"]) == 2
        assert payload["E1"]["latest"]["scale"] == "smoke"
        assert payload["E1"]["latest"]["backend"] == {"backend": "serial"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e42"])

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--seeds", "one,two"])


class TestScenario:
    def test_scenario_list_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["scenarios"]) >= 10

    def test_scenario_show_includes_vector_support(self, capsys):
        assert main(["scenario", "show", "onoff-jamming"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == "onoff-jamming"
        assert payload["vector_support"]["binary-exponential"] == "vectorizable"
        # The sensing tier vectorizes too since the sensing-vector kernels.
        assert payload["vector_support"]["low-sensing"] == "vectorizable"
        # Reactive scenarios vectorize too since the lockstep feedback loop.
        assert main(["scenario", "show", "reactive-starvation"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for reason in payload["vector_support"].values():
            assert reason == "vectorizable"

    def test_scenario_show_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "show", "no-such-scenario"])

    def test_scenario_run_writes_json_report(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            [
                "scenario", "run", "budget-starved-jammer",
                "--scale", "smoke",
                "--seeds", "11",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        payload = json.loads(
            (out_dir / "scenario-budget-starved-jammer.json").read_text(
                encoding="utf-8"
            )
        )
        assert payload["experiment"] == "budget-starved-jammer"
        assert payload["scenario"]["id"] == "budget-starved-jammer"
        assert payload["seeds"] == [11]
        assert payload["scale"] == "smoke"
        assert len(payload["content_hash"]) == 64
        assert payload["rows"] and payload["verdicts"]
        rendered = capsys.readouterr().out
        assert "budget-starved-jammer" in rendered

    def test_scenario_run_vector_backend_reports_split(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "scenario", "run", "ramp-down-jamming",
                "--scale", "smoke",
                "--backend", "vector",
                "--out", str(out_dir),
                "--bench-out", str(tmp_path / "BENCH.json"),
            ]
        )
        assert code == 0
        payload = json.loads(
            (out_dir / "scenario-ramp-down-jamming.json").read_text(encoding="utf-8")
        )
        backend = payload["backend"]
        assert backend["backend"] == "vector"
        # All of ramp-down-jamming's protocols (low-sensing included) ride
        # the schedule-aware vector kernels now.
        assert backend["vectorized_jobs"] > 0
        assert backend["fallback_jobs"] == 0
        bench = json.loads((tmp_path / "BENCH.json").read_text(encoding="utf-8"))
        assert bench["scenario:ramp-down-jamming"]["latest"]["content_hash"]

    def test_scenario_run_vector_backend_warns_on_majority_fallback(
        self, tmp_path, capsys
    ):
        path = tmp_path / "replayed.json"
        path.write_text(
            json.dumps(
                {
                    "id": "cli-replayed-scenario",
                    "title": "Replayed arrivals (stays on the scalar engine)",
                    "protocols": ["binary-exponential"],
                    "max_slots": 400,
                    "replications": 2,
                    "arrivals": {"kind": "trace", "counts": [6, 0, 0]},
                }
            ),
            encoding="utf-8",
        )
        code = main(
            ["scenario", "run", str(path), "--scale", "smoke", "--backend", "vector"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warning:" in out
        assert "fall back to the serial engine" in out
        assert "TraceArrivals" in out

    def test_scenario_run_vector_backend_no_warning_when_vectorized(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "scenario", "run", "ramp-down-jamming",
                "--scale", "smoke",
                "--backend", "vector",
            ]
        )
        assert code == 0
        assert "warning:" not in capsys.readouterr().out

    def test_scenario_run_from_file(self, tmp_path, capsys):
        path = tmp_path / "mine.json"
        path.write_text(
            json.dumps(
                {
                    "id": "cli-file-scenario",
                    "title": "CLI file scenario",
                    "protocols": ["binary-exponential"],
                    "max_slots": 400,
                    "arrivals": {"kind": "batch", "n": 8},
                }
            )
        )
        assert main(["scenario", "run", str(path), "--scale", "smoke", "--seeds", "3"]) == 0
        assert "cli-file-scenario" in capsys.readouterr().out

    def test_scenario_run_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "no-such-scenario"])

    def test_scenario_run_conflicting_duplicate_ids_rejected(self, tmp_path, capsys):
        definition = {
            "id": "dup",
            "title": "Duplicate",
            "protocols": ["binary-exponential"],
            "max_slots": 400,
            "arrivals": {"kind": "batch", "n": 5},
        }
        first = tmp_path / "a.json"
        first.write_text(json.dumps(definition))
        second = tmp_path / "b.json"
        second.write_text(json.dumps({**definition, "max_slots": 500}))
        with pytest.raises(SystemExit):
            main(["scenario", "run", str(first), str(second), "--scale", "smoke"])
        assert "requested twice" in capsys.readouterr().err

    def test_unwritable_out_dir_fails_before_running(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--scale", "smoke", "--out", "/proc/nope/results"])
        assert "cannot create --out" in capsys.readouterr().err


class TestCampaignCli:
    def test_run_status_show_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "campaign", "run", "onoff-jamming",
            "--scale", "smoke",
            "--store", store,
            "--id", "c1",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[c1] complete" in out

        assert main(["campaign", "status", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaigns"][0]["campaign_id"] == "c1"
        assert payload["campaigns"][0]["status"] == "complete"
        assert len(payload["store_fingerprint"]) == 64

        assert main(["campaign", "show", "c1", "--store", store, "--json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["campaign"]["campaign_id"] == "c1"
        assert shown["rows"]
        assert shown["store_fingerprint"] == payload["store_fingerprint"]

    def test_interrupt_env_then_resume_cli(self, tmp_path, capsys, monkeypatch):
        store = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_CAMPAIGN_FAIL_AFTER_UNITS", "1")
        code = main(
            [
                "campaign", "run", "onoff-jamming",
                "--scale", "smoke",
                "--store", store,
                "--id", "c1",
                "--checkpoint-every", "1",
            ]
        )
        assert code == 1
        assert "interrupted after 1 unit" in capsys.readouterr().out
        monkeypatch.delenv("REPRO_CAMPAIGN_FAIL_AFTER_UNITS")
        assert main(["campaign", "resume", "c1", "--store", store]) == 0
        assert "[c1] complete" in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["campaign", "run", "budget-starved-jammer", "--scale", "smoke",
                "--store", store]
        assert main(base + ["--id", "a"]) == 0
        assert main(base + ["--id", "b", "--seeds", "101,102"]) == 0
        capsys.readouterr()
        assert main(["campaign", "diff", "a", "b", "--store", store]) == 0
        assert "PASS" in capsys.readouterr().out


class TestCacheCli:
    def test_stats_migrates_legacy_pickle_directories(self, tmp_path, capsys):
        """A pre-store cache directory of loose <hash>.pkl files is exactly
        what `cache stats|prune` must be able to manage."""
        import pickle

        from repro.adversary.arrivals import BatchArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.exec.backends import SerialBackend
        from repro.experiments.plan import RunSpec, factory
        from repro.protocols.binary_exponential import BinaryExponentialBackoff

        spec = RunSpec(
            protocol=BinaryExponentialBackoff(),
            adversary=factory(CompositeAdversary, factory(BatchArrivals, 8)),
            seed=3,
            max_slots=500,
        )
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        result = SerialBackend().run([spec])[0]
        (legacy_dir / f"{spec.cache_key()}.pkl").write_bytes(pickle.dumps(result))
        assert main(["cache", "stats", "--cache-dir", str(legacy_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["runs"] == 1, "legacy entry was not migrated"
        assert not list(legacy_dir.glob("*.pkl")), "legacy file left behind"

    def test_stats_and_prune(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert (
            main(
                [
                    "run", "e1",
                    "--scale", "smoke",
                    "--seeds", "11",
                    "--cache-dir", cache_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["runs"] > 0
        assert stats["artifact_bytes"] > 0

        args = ["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "0"]
        assert main(args + ["--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert main(args) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["runs"] == 0 and stats["artifacts"] == 0


class TestEquivalence:
    def test_default_core_passes(self, capsys):
        code = main(["equivalence", "--replications", "6", "--batch-sizes", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all configurations passed" in out
        assert "binary-exponential" in out

    def test_scenario_mode_passes(self, capsys):
        code = main(
            [
                "equivalence",
                "--scenario", "ramp-down-jamming",
                "--scale", "smoke",
                "--replications", "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ramp-down-jamming [binary-exponential]" in out

    def test_reactive_scenario_passes_on_the_vector_path(self, capsys):
        code = main(
            ["equivalence", "--scenario", "reactive-starvation", "--scale", "smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reactive-starvation [low-sensing]" in out
        assert "all configurations passed" in out

    def test_scenario_without_vectorizable_group_rejected(self, tmp_path):
        path = tmp_path / "replayed.json"
        path.write_text(
            json.dumps(
                {
                    "id": "equivalence-replayed",
                    "title": "Replayed arrivals (never vectorizes)",
                    "protocols": ["binary-exponential"],
                    "max_slots": 400,
                    "replications": 2,
                    "arrivals": {"kind": "trace", "counts": [6, 0, 0]},
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit):
            main(["equivalence", "--scenario", str(path), "--scale", "smoke"])

    def test_bad_replications_rejected(self):
        with pytest.raises(SystemExit):
            main(["equivalence", "--replications", "0"])

    def test_bad_batch_sizes_rejected(self, capsys):
        for raw in ("-5", "0", "fifty"):
            with pytest.raises(SystemExit):
                main(["equivalence", "--batch-sizes", raw])
            assert "--batch-sizes" in capsys.readouterr().err
