"""Unit tests for the LOW-SENSING BACKOFF per-packet state machine."""

from random import Random

import pytest

from repro.channel.feedback import SLEEP_REPORT, Feedback, FeedbackReport
from repro.core.low_sensing import (
    DecoupledLowSensingBackoff,
    LowSensingBackoff,
    LowSensingPacketState,
)
from repro.core.parameters import LowSensingParameters


def listen_report(feedback: Feedback) -> FeedbackReport:
    return FeedbackReport(feedback=feedback, sent=False)


class TestInitialState:
    def test_new_packet_starts_at_w_min(self):
        protocol = LowSensingBackoff()
        state = protocol.new_packet_state()
        assert state.window == protocol.params.w_min

    def test_states_are_independent(self):
        protocol = LowSensingBackoff()
        a, b = protocol.new_packet_state(), protocol.new_packet_state()
        a.observe(listen_report(Feedback.NOISE), Random(0))
        assert a.window > b.window


class TestWindowUpdates:
    def setup_method(self):
        self.params = LowSensingParameters(c=0.5, w_min=32.0)
        self.state = LowSensingPacketState(self.params)
        self.rng = Random(0)

    def test_noise_backs_off(self):
        before = self.state.window
        self.state.observe(listen_report(Feedback.NOISE), self.rng)
        assert self.state.window == pytest.approx(self.params.backoff(before))

    def test_silence_backs_on_but_not_below_w_min(self):
        self.state.observe(listen_report(Feedback.EMPTY), self.rng)
        assert self.state.window == self.params.w_min

    def test_silence_after_noise_reduces_window(self):
        self.state.observe(listen_report(Feedback.NOISE), self.rng)
        grown = self.state.window
        self.state.observe(listen_report(Feedback.EMPTY), self.rng)
        assert self.state.window < grown

    def test_success_heard_from_other_packet_changes_nothing(self):
        self.state.observe(listen_report(Feedback.NOISE), self.rng)
        before = self.state.window
        self.state.observe(listen_report(Feedback.SUCCESS), self.rng)
        assert self.state.window == before

    def test_sleeping_changes_nothing(self):
        self.state.observe(listen_report(Feedback.NOISE), self.rng)
        before = self.state.window
        self.state.observe(SLEEP_REPORT, self.rng)
        assert self.state.window == before

    def test_own_success_changes_nothing(self):
        report = FeedbackReport(feedback=Feedback.SUCCESS, sent=True, succeeded=True)
        before = self.state.window
        self.state.observe(report, self.rng)
        assert self.state.window == before

    def test_failed_send_backs_off(self):
        # A sender that remains in the system experienced a noisy slot.
        report = FeedbackReport(feedback=Feedback.NOISE, sent=True, succeeded=False)
        before = self.state.window
        self.state.observe(report, self.rng)
        assert self.state.window > before

    def test_window_never_drops_below_w_min(self):
        for _ in range(50):
            self.state.observe(listen_report(Feedback.EMPTY), self.rng)
        assert self.state.window >= self.params.w_min


class TestDecisionDistribution:
    """The empirical action frequencies must match the Figure 1 probabilities."""

    def test_send_frequency_is_one_over_w(self):
        params = LowSensingParameters(c=0.5, w_min=32.0)
        state = LowSensingPacketState(params)
        rng = Random(42)
        trials = 60_000
        sends = sum(1 for _ in range(trials) if state.decide(rng).is_send)
        expected = trials / params.w_min
        assert sends == pytest.approx(expected, rel=0.2)

    def test_access_frequency_matches_formula(self):
        params = LowSensingParameters(c=0.5, w_min=32.0)
        state = LowSensingPacketState(params)
        rng = Random(43)
        trials = 60_000
        accesses = sum(
            1 for _ in range(trials) if state.decide(rng).accesses_channel
        )
        expected = trials * params.access_probability(params.w_min)
        assert accesses == pytest.approx(expected, rel=0.1)

    def test_cached_probabilities_follow_window(self):
        state = LowSensingPacketState(LowSensingParameters())
        rng = Random(0)
        p_before = state.access_probability()
        state.observe(listen_report(Feedback.NOISE), rng)
        assert state.access_probability() < p_before
        assert state.sending_probability() == pytest.approx(1.0 / state.window)

    def test_describe_reports_window_and_probabilities(self):
        state = LowSensingPacketState(LowSensingParameters())
        description = state.describe()
        assert description["window"] == state.window
        assert 0.0 < description["access_probability"] <= 1.0


class TestDecoupledVariant:
    def test_send_frequency_matches_coupled_variant(self):
        params = LowSensingParameters(c=0.5, w_min=32.0)
        coupled = LowSensingBackoff(params=params).new_packet_state()
        decoupled = DecoupledLowSensingBackoff(params=params).new_packet_state()
        rng_a, rng_b = Random(7), Random(7)
        trials = 60_000
        sends_coupled = sum(1 for _ in range(trials) if coupled.decide(rng_a).is_send)
        sends_decoupled = sum(
            1 for _ in range(trials) if decoupled.decide(rng_b).is_send
        )
        assert sends_decoupled == pytest.approx(sends_coupled, rel=0.3)

    def test_protocol_names_differ(self):
        assert DecoupledLowSensingBackoff().name != LowSensingBackoff().name


class TestProtocolFactory:
    def test_describe_includes_constants(self):
        description = LowSensingBackoff().describe()
        assert description["name"] == "low-sensing"
        assert "c" in description and "w_min" in description
