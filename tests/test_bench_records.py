"""Tests for the merging wall-clock bench writer (`repro.experiments.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import record_bench


class TestRecordBench:
    def test_creates_file_with_latest_and_history(self, tmp_path):
        path = tmp_path / "results" / "BENCH_test.json"
        record_bench(path, "E1", seconds=1.25, scale="smoke")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["E1"]["latest"]["seconds"] == 1.25
        assert data["E1"]["latest"]["scale"] == "smoke"
        assert "recorded_at" in data["E1"]["latest"]
        assert len(data["E1"]["history"]) == 1

    def test_mirror_merges_the_same_record_into_a_second_file(self, tmp_path):
        path = tmp_path / "results" / "BENCH_test.json"
        mirror = tmp_path / "BENCH_test.json"
        record_bench(path, "E1", seconds=1.25, scale="smoke", mirror=mirror)
        record_bench(path, "E1", seconds=1.5, scale="smoke", mirror=mirror)
        primary = json.loads(path.read_text(encoding="utf-8"))
        mirrored = json.loads(mirror.read_text(encoding="utf-8"))
        # Identical content (including timestamps): one record, two homes.
        assert mirrored == primary
        assert len(mirrored["E1"]["history"]) == 2

    def test_mirror_equal_to_primary_writes_once(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        record_bench(path, "E1", seconds=1.0, scale="smoke", mirror=path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert len(data["E1"]["history"]) == 1
        # A differently spelled path to the same file must not double-merge.
        record_bench(
            path, "E1", seconds=2.0, scale="smoke",
            mirror=tmp_path / "sub" / ".." / "BENCH_test.json",
        )
        data = json.loads(path.read_text(encoding="utf-8"))
        assert len(data["E1"]["history"]) == 2

    def test_history_accumulates_instead_of_overwriting(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        record_bench(path, "E1", seconds=1.0, scale="smoke")
        record_bench(path, "E1", seconds=2.0, scale="default")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["E1"]["latest"]["seconds"] == 2.0
        assert [entry["seconds"] for entry in data["E1"]["history"]] == [1.0, 2.0]

    def test_merges_across_experiments(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        record_bench(path, "E1", seconds=1.0, scale="smoke")
        record_bench(path, "E2", seconds=3.0, scale="smoke")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert set(data) == {"E1", "E2"}
        assert data["E1"]["latest"]["seconds"] == 1.0

    def test_migrates_legacy_flat_entries(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text(
            json.dumps({"E1": {"seconds": 9.9, "scale": "default"}}),
            encoding="utf-8",
        )
        record_bench(path, "E1", seconds=1.0, scale="smoke")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert [entry["seconds"] for entry in data["E1"]["history"]] == [9.9, 1.0]
        assert data["E1"]["latest"]["seconds"] == 1.0

    def test_records_backend_and_extra_fields(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        record_bench(
            path,
            "VEC",
            seconds=0.5,
            scale="default",
            backend={"backend": "vector"},
            extra={"speedup": 6.5},
        )
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["VEC"]["latest"]["backend"] == {"backend": "vector"}
        assert data["VEC"]["latest"]["speedup"] == 6.5

    def test_corrupt_file_is_backed_up_with_a_warning(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.warns(UserWarning, match="backed it up"):
            record_bench(path, "E1", seconds=1.0, scale="smoke")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["E1"]["latest"]["seconds"] == 1.0
        backup = tmp_path / "BENCH_test.json.corrupt"
        assert backup.read_text(encoding="utf-8") == "{not json"

    def test_non_object_json_is_backed_up(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.warns(UserWarning, match="expected a JSON object"):
            record_bench(path, "E1", seconds=1.0, scale="smoke")
        assert (tmp_path / "BENCH_test.json.corrupt").exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["E1"]["latest"]["seconds"] == 1.0

    def test_empty_file_is_a_fresh_history_not_corruption(self, tmp_path):
        import warnings

        path = tmp_path / "BENCH_test.json"
        path.write_text("", encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            record_bench(path, "E1", seconds=1.0, scale="smoke")
        assert not (tmp_path / "BENCH_test.json.corrupt").exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["E1"]["latest"]["seconds"] == 1.0
