"""Tests for `VectorBackend`: grouping, ordering, and the serial fallback.

The vector/scalar boundary contract: every configuration the vector engine
does not support (custom protocol/adversary subclasses, replayed arrival
traces) must cleanly fall back to the serial engine and produce results
*identical* to `SerialBackend` — it is literally the same code path, so
this is an equality, not a statistical, assertion.  The sensing protocols
vectorize since the sensing-tier kernels landed, and the reactive/adaptive/
coupled adversaries plus trace/potential outputs vectorize since the
lockstep feedback loop, so the fallback set here is exactly the
unregistered remainder.
"""

from __future__ import annotations

import pytest

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import BatchArrivals, TraceArrivals
from repro.adversary.base import Adversary
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    NoJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.core.low_sensing import LowSensingBackoff
from repro.exec import (
    BACKEND_NAMES,
    ConfigJob,
    SerialBackend,
    VectorBackend,
    make_backend,
)
from repro.experiments.plan import RunSpec, SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.sawtooth import SawtoothBackoff
from repro.sim.config import SimulationConfig


def batch_adversary(n):
    return factory(CompositeAdversary, factory(BatchArrivals, n))


def spec(protocol, seed, *, adversary=None, **kwargs):
    return RunSpec(
        protocol=protocol,
        adversary=adversary or batch_adversary(20),
        seed=seed,
        **kwargs,
    )


def summary_tuple(result):
    summary = result.summary()
    return (
        result.seed,
        result.num_slots,
        result.drained,
        summary.num_arrivals,
        summary.num_delivered,
        summary.throughput,
        summary.mean_accesses,
        summary.max_backlog,
    )


class TweakedJammer(NoJamming):
    """Subclass without a registered kernel: must stay scalar."""


class CustomAdversary(Adversary):
    """Not a CompositeAdversary: must stay scalar."""

    def arrivals(self, view, rng):
        return 1 if view.slot == 0 else 0

    def jam(self, view, rng):
        return False


UNSUPPORTED_SPECS = [
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            4,
            adversary=factory(
                CompositeAdversary, factory(TraceArrivals, (3, 0, 2, 1))
            ),
        ),
        id="trace-arrivals",
    ),
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            5,
            adversary=factory(
                CompositeAdversary,
                factory(BatchArrivals, 10),
                factory(TweakedJammer),
            ),
        ),
        id="unregistered-jammer-subclass",
    ),
    pytest.param(
        spec(BinaryExponentialBackoff(), 6, adversary=factory(CustomAdversary)),
        id="custom-adversary",
    ),
]

NEWLY_SUPPORTED_SPECS = [
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            4,
            adversary=factory(
                CompositeAdversary,
                factory(BatchArrivals, 10),
                factory(ReactiveTargetedJammer, budget=5, target_index=0),
            ),
        ),
        id="reactive-targeted",
    ),
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            5,
            adversary=factory(
                CompositeAdversary,
                factory(BatchArrivals, 10),
                factory(ReactiveSuccessJammer, budget=3),
            ),
        ),
        id="reactive-success",
    ),
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            6,
            adversary=factory(
                CompositeAdversary,
                factory(BatchArrivals, 10),
                factory(AdaptiveContentionJammer, budget=5),
            ),
        ),
        id="adaptive-contention",
    ),
    pytest.param(
        spec(
            BinaryExponentialBackoff(),
            7,
            adversary=factory(
                BacklogCouplingAdversary, target_backlog=2, total_packets=10
            ),
        ),
        id="backlog-coupling",
    ),
    pytest.param(
        spec(BinaryExponentialBackoff(), 8, collect_trace=True), id="trace-enabled"
    ),
    pytest.param(
        spec(BinaryExponentialBackoff(), 9, collect_potential=True),
        id="potential-enabled",
    ),
]


class TestFallbackBoundary:
    @pytest.mark.parametrize("unsupported", UNSUPPORTED_SPECS)
    def test_unsupported_spec_declares_a_reason(self, unsupported):
        assert unsupported.vector_support() is not None

    def test_sensing_protocols_no_longer_fall_back(self):
        for protocol in (
            SawtoothBackoff(),
            FullSensingMultiplicativeWeights(),
            LowSensingBackoff(),
        ):
            assert spec(protocol, 1).vector_support() is None

    @pytest.mark.parametrize("supported", NEWLY_SUPPORTED_SPECS)
    def test_feedback_coupled_specs_no_longer_fall_back(self, supported):
        assert supported.vector_support() is None

    @pytest.mark.parametrize("supported", NEWLY_SUPPORTED_SPECS)
    def test_feedback_coupled_specs_run_on_the_vector_path(self, supported):
        backend = VectorBackend()
        backend.run([supported])
        assert backend.vectorized_jobs == 1
        assert backend.fallback_jobs == 0

    def test_backlog_coupling_mega_exclusion_names_the_coupling(self):
        from repro.sim.vector.support import mega_batch_exclusion

        coupled = spec(
            BinaryExponentialBackoff(),
            7,
            adversary=factory(
                BacklogCouplingAdversary, target_backlog=2, total_packets=10
            ),
        )
        assert coupled.vector_support() is None
        reason = mega_batch_exclusion(coupled)
        assert reason is not None and "backlog" in reason

    @pytest.mark.parametrize("unsupported", UNSUPPORTED_SPECS)
    def test_unsupported_spec_identical_to_serial(self, unsupported):
        backend = VectorBackend()
        vector_result = backend.run([unsupported])[0]
        serial_result = SerialBackend().run([unsupported])[0]
        assert summary_tuple(vector_result) == summary_tuple(serial_result)
        assert (
            vector_result.collector.backlog_series
            == serial_result.collector.backlog_series
        )
        assert backend.fallback_jobs == 1
        assert backend.vectorized_jobs == 0

    def test_config_jobs_always_fall_back(self):
        config = SimulationConfig(
            protocol=BinaryExponentialBackoff(),
            adversary=CompositeAdversary(BatchArrivals(10), NoJamming()),
            seed=1,
        )
        backend = VectorBackend()
        results = backend.run([ConfigJob(config)])
        assert backend.fallback_jobs == 1
        assert results[0].num_arrivals == 10


class TestGroupingAndOrdering:
    def test_results_in_job_order_for_mixed_batches(self):
        jobs = [
            spec(LowSensingBackoff(), 1),
            spec(BinaryExponentialBackoff(), 2),
            spec(LowSensingBackoff(), 3),
            spec(BinaryExponentialBackoff(), 4, collect_trace=True),
            spec(FixedProbabilityProtocol.tuned_for(20), 5),
        ]
        backend = VectorBackend()
        results = backend.run(jobs)
        assert [r.seed for r in results] == [1, 2, 3, 4, 5]
        assert [r.protocol_name for r in results] == [
            "low-sensing",
            "binary-exponential",
            "low-sensing",
            "binary-exponential",
            "fixed-probability",
        ]
        # The trace-enabled BEB job vectorizes too (traces are lockstep
        # outputs now) but lands in its own group: its collection options
        # differ from the plain BEB job.  Low-sensing seeds 1 and 3 share a
        # lockstep group.
        assert backend.vectorized_jobs == 5
        assert backend.fallback_jobs == 0
        assert backend.vector_groups == 4

    def test_same_config_many_seeds_is_one_group(self):
        jobs = [spec(BinaryExponentialBackoff(), seed) for seed in range(6)]
        backend = VectorBackend()
        backend.run(jobs)
        assert backend.vector_groups == 1
        assert backend.vectorized_jobs == 6

    def test_differing_max_slots_split_groups(self):
        jobs = [
            spec(BinaryExponentialBackoff(), 1, max_slots=1_000),
            spec(BinaryExponentialBackoff(), 2, max_slots=2_000),
        ]
        backend = VectorBackend()
        backend.run(jobs)
        assert backend.vector_groups == 2

    def test_empty_job_list(self):
        assert VectorBackend().run([]) == []

    def test_repeat_runs_bit_identical(self):
        jobs = [spec(BinaryExponentialBackoff(), seed) for seed in (11, 23)]
        first = VectorBackend().run(jobs)
        second = VectorBackend().run(jobs)
        for a, b in zip(first, second):
            assert a.collector.backlog_series == b.collector.backlog_series
            assert summary_tuple(a) == summary_tuple(b)


class TestPlanIntegration:
    def test_sweep_plan_runs_on_vector_backend(self):
        reactive = factory(
            CompositeAdversary,
            factory(BatchArrivals, 20),
            factory(ReactiveSuccessJammer, budget=3),
        )
        plan = SweepPlan()
        plan.add_group(
            BinaryExponentialBackoff(), reactive, seeds=[1, 2, 3], columns={"n": 20}
        )
        plan.add_group(
            LowSensingBackoff(), batch_adversary(20), seeds=[1, 2, 3], columns={"n": 20}
        )
        vector_rows = plan.run(VectorBackend()).group_rows()
        serial_rows = plan.run(SerialBackend()).group_rows()
        assert len(vector_rows) == 2
        # Both groups vectorize (the reactive group rides the lockstep
        # feedback loop): same workload, different coins.
        for vector_row, serial_row in zip(vector_rows, serial_rows):
            assert vector_row["arrivals"] == serial_row["arrivals"]
            assert vector_row["drained"] == serial_row["drained"]
        assert vector_rows[1]["mean_listens"] > 0

    def test_vector_summary_metadata(self):
        unsupported = factory(
            CompositeAdversary,
            factory(TraceArrivals, (2, 0, 1)),
        )
        plan = SweepPlan()
        plan.add_group(BinaryExponentialBackoff(), batch_adversary(10), seeds=[1, 2])
        plan.add_group(
            BinaryExponentialBackoff(initial_window=8.0), batch_adversary(10), seeds=[1, 2]
        )
        plan.add_group(LowSensingBackoff(), unsupported, seeds=[3, 4])
        summary = plan.vector_summary()
        assert summary["total_specs"] == 6
        assert summary["vectorizable_specs"] == 4
        assert list(summary["fallback_groups"]) == [2]
        # Two distinct BEB configurations: two lockstep groups, one
        # mega-batch launch (same kernel family).
        assert summary["vector_groups"] == 2
        assert summary["mega_batches"] == 1
        assert summary["mega_exclusions"] == {}

    def test_vector_summary_reports_mega_exclusions(self):
        plan = SweepPlan()
        plan.add_group(
            BinaryExponentialBackoff(),
            batch_adversary(10),
            seeds=[1, 2],
            collect_trace=True,
        )
        plan.add_group(
            BinaryExponentialBackoff(),
            factory(BacklogCouplingAdversary, target_backlog=2, total_packets=10),
            seeds=[1, 2],
        )
        summary = plan.vector_summary()
        assert summary["vectorizable_specs"] == 4
        assert summary["fallback_groups"] == {}
        exclusions = summary["mega_exclusions"]
        assert "mega-batch" in exclusions[0]
        assert "backlog" in exclusions[1]


class TestRegistration:
    def test_backend_names_include_vector(self):
        assert "vector" in BACKEND_NAMES

    def test_make_backend_vector(self):
        backend = make_backend("vector")
        assert isinstance(backend, VectorBackend)
        description = backend.describe()
        assert description["backend"] == "vector"
        assert description["fallback"]["backend"] == "serial"

    def test_make_backend_vector_with_cache(self, tmp_path):
        backend = make_backend("vector", cache_dir=str(tmp_path))
        assert backend.describe()["inner"]["backend"] == "vector"


class TestCacheLayoutIsolation:
    """A shared --cache-dir must never serve one engine's results to the
    other: the layouts are only statistically equivalent, and a vectorized
    job's result additionally depends on the batch it is grouped into."""

    def test_serial_cache_entry_not_served_to_vector_run(self, tmp_path):
        job = spec(BinaryExponentialBackoff(), 7)
        serial_cached = make_backend("serial", cache_dir=str(tmp_path))
        serial_result = serial_cached.run([job])[0]
        vector_cached = make_backend("vector", cache_dir=str(tmp_path))
        vector_result = vector_cached.run([job])[0]
        # The vector run must have computed its own (vector-layout) result,
        # not loaded the serial pickle.
        assert vector_cached.hits == 0
        reference = VectorBackend().run([job])[0]
        assert (
            vector_result.collector.backlog_series
            == reference.collector.backlog_series
        )
        # And the serial entry is still intact for scalar consumers.
        serial_again = make_backend("serial", cache_dir=str(tmp_path)).run([job])[0]
        assert (
            serial_again.collector.backlog_series
            == serial_result.collector.backlog_series
        )

    def test_vectorized_jobs_are_never_cached(self, tmp_path):
        job = spec(BinaryExponentialBackoff(), 7)
        vector_cached = make_backend("vector", cache_dir=str(tmp_path))
        vector_cached.run([job])
        vector_cached.run([job])
        assert vector_cached.hits == 0
        assert vector_cached.misses == 2
        assert not list(tmp_path.glob("*.pkl"))

    def test_fallback_jobs_share_the_scalar_cache(self, tmp_path):
        replayed = factory(
            CompositeAdversary,
            factory(TraceArrivals, (5, 0, 0, 5)),
        )
        job = spec(LowSensingBackoff(), 7, adversary=replayed)  # serial fallback
        serial_cached = make_backend("serial", cache_dir=str(tmp_path))
        serial_result = serial_cached.run([job])[0]
        vector_cached = make_backend("vector", cache_dir=str(tmp_path))
        vector_result = vector_cached.run([job])[0]
        # Fallback results are scalar-layout, hence safely interchangeable.
        assert vector_cached.hits == 1
        assert (
            vector_result.collector.backlog_series
            == serial_result.collector.backlog_series
        )

    def test_result_layout_declarations(self):
        backend = VectorBackend()
        replayed = factory(
            CompositeAdversary,
            factory(TraceArrivals, (5, 0, 0, 5)),
        )
        fallback_spec = spec(BinaryExponentialBackoff(), 1, adversary=replayed)
        assert backend.result_layout(spec(BinaryExponentialBackoff(), 1)) is None
        # Sensing protocols are vector-layout now too.
        assert backend.result_layout(spec(LowSensingBackoff(), 1)) is None
        assert backend.result_layout(fallback_spec) == "scalar"
        assert SerialBackend().result_layout(fallback_spec) == "scalar"
