"""Schedule-aware vector kernels: support registry, chunking, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.arrivals import (
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    TraceArrivals,
)
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    BernoulliJamming,
    BurstJamming,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
)
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.analysis.equivalence import verify_plan_equivalence, verify_vector_equivalence
from repro.exec import VectorBackend
from repro.experiments.plan import RunSpec, SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.scenarios.schedule import Phase
from repro.sim.vector.adversaries import (
    ScheduledArrivalsVector,
    ScheduledJammingVector,
    make_arrivals_kernel,
    make_jammer_kernel,
)
from repro.sim.vector.rng import VectorStreams
from repro.sim.vector.support import (
    arrival_process_support,
    jammer_support,
    vector_support,
)


def scheduled_spec(arrivals_factory, jamming_factory, seed=1, max_slots=20_000):
    return RunSpec(
        protocol=BinaryExponentialBackoff(),
        adversary=factory(CompositeAdversary, arrivals_factory, jamming_factory),
        seed=seed,
        max_slots=max_slots,
    )


def ramp_jam_factory():
    return factory(
        ScheduledJamming,
        factory(Phase, factory(BernoulliJamming, 0.6), duration=200),
        factory(Phase, factory(NoJamming)),
    )


class TestSupportRegistry:
    def test_piecewise_constant_schedule_vectorizes(self):
        spec = scheduled_spec(
            factory(
                ScheduledArrivals,
                factory(Phase, factory(BatchArrivals, 30), duration=100),
                factory(Phase, factory(NoArrivals)),
            ),
            ramp_jam_factory(),
        )
        assert spec.vector_support() is None

    def test_reason_names_offending_arrival_phase(self):
        process = ScheduledArrivals(
            Phase(BatchArrivals(5), 10), Phase(TraceArrivals([1, 2]))
        )
        reason = arrival_process_support(process)
        assert reason == (
            "arrival schedule phase 1: arrival process TraceArrivals "
            "has no vector schedule"
        )

    def test_reason_names_offending_jamming_phase(self):
        class CustomJammer(NoJamming):
            pass

        jammer = ScheduledJamming(Phase(NoJamming(), 5), Phase(CustomJammer()))
        reason = jammer_support(jammer)
        assert "jamming schedule phase 1" in reason
        assert "CustomJammer" in reason

    def test_reactive_phase_rejected(self):
        jammer = ScheduledJamming(
            Phase(NoJamming(), 5), Phase(ReactiveSuccessJammer(budget=3))
        )
        # The composite adversary reports reactivity first; the jammer
        # check itself also names the schedule.
        assert jammer_support(jammer) == "jamming schedule contains a reactive phase"
        spec = scheduled_spec(factory(BatchArrivals, 5), factory(
            ScheduledJamming,
            factory(Phase, factory(NoJamming), duration=5),
            factory(Phase, factory(ReactiveSuccessJammer, budget=3)),
        ))
        assert "reactive" in vector_support(spec)

    def test_nested_schedules_recurse(self):
        inner = ScheduledArrivals(Phase(BatchArrivals(5), 10), Phase(NoArrivals()))
        outer = ScheduledArrivals(Phase(inner, 50), Phase(NoArrivals()))
        assert arrival_process_support(outer) is None
        bad_inner = ScheduledArrivals(Phase(TraceArrivals([1])))
        bad_outer = ScheduledArrivals(Phase(bad_inner, 50), Phase(NoArrivals()))
        assert "arrival schedule phase 0: arrival schedule phase 0" in (
            arrival_process_support(bad_outer)
        )

    def test_subclassed_schedule_adapter_rejected(self):
        class CustomScheduled(ScheduledArrivals):
            pass

        process = CustomScheduled(Phase(BatchArrivals(5)))
        assert "has no vector schedule" in arrival_process_support(process)


class TestScheduledKernels:
    def test_arrival_chunks_match_scalar_adapter(self):
        process = ScheduledArrivals(
            Phase(BatchArrivals(5), 10),
            Phase(PeriodicBurstArrivals(burst_size=3, period=4), 10),
            Phase(NoArrivals()),
        )
        replications = 3
        kernel = make_arrivals_kernel(process, replications)
        assert isinstance(kernel, ScheduledArrivalsVector)
        streams = VectorStreams([1, 2, 3])
        chunk = kernel.chunk(0, 25, streams)
        from random import Random

        rng = Random(0)
        expected = [
            process.arrivals(SystemView(slot=slot, active_packets=()), rng)
            for slot in range(25)
        ]
        for replication in range(replications):
            assert chunk[replication].tolist() == expected
        assert kernel.capacity_bound() is None  # endless burst phase
        assert kernel.exhausted(20)

    def test_arrival_chunk_with_offset_start_straddles_phases(self):
        process = ScheduledArrivals(
            Phase(BatchArrivals(7, slot=2), 600),
            Phase(BatchArrivals(9), 600),  # fires at global slot 600
            Phase(NoArrivals()),
        )
        kernel = make_arrivals_kernel(process, 2)
        streams = VectorStreams([1, 2])
        chunk = kernel.chunk(590, 30, streams)
        expected = np.zeros(30, dtype=np.int64)
        expected[600 - 590] = 9
        assert (chunk == expected).all()
        assert kernel.capacity_bound() == 16

    def test_jamming_kernel_phase_transitions_and_budgets(self):
        jammer = ScheduledJamming(
            Phase(PeriodicJamming(period=2, budget=2), 6),
            Phase(NoJamming(), 4),
            Phase(BurstJamming(start=0, length=2)),
        )
        replications = 2
        kernel = make_jammer_kernel(jammer, replications)
        assert isinstance(kernel, ScheduledJammingVector)
        assert not kernel.never_jams
        streams = VectorStreams([1, 2])
        backlog = np.ones(replications, dtype=np.int64)
        running = np.ones(replications, dtype=bool)
        kernel.begin_chunk(0, 16, streams)
        decisions = [
            kernel.jam(slot, backlog, running).tolist() for slot in range(16)
        ]
        jammed_slots = [slot for slot, d in enumerate(decisions) if any(d)]
        # Periodic phase jams slots 0 and 2 (budget 2 of 3 eligible), burst
        # phase jams the first two slots of its own clock (10 and 11).
        assert jammed_slots == [0, 2, 10, 11]
        assert kernel.jams_used().tolist() == [4, 4]

    def test_all_silent_schedule_reports_never_jams(self):
        jammer = ScheduledJamming(Phase(NoJamming(), 5), Phase(NoJamming()))
        kernel = make_jammer_kernel(jammer, 2)
        assert kernel.never_jams

    def test_bernoulli_schedule_budget_respected_across_chunks(self):
        jammer = ScheduledJamming(
            Phase(BernoulliJamming(1.0, budget=3, only_active=False), 700),
            Phase(NoJamming()),
        )
        kernel = make_jammer_kernel(jammer, 1)
        streams = VectorStreams([9])
        running = np.ones(1, dtype=bool)
        backlog = np.zeros(1, dtype=np.int64)
        total = 0
        # Two engine-style chunks of 512 slots straddle the 700-slot phase.
        for start in (0, 512):
            kernel.begin_chunk(start, 512, streams)
            for slot in range(start, start + 512):
                total += int(kernel.jam(slot, backlog, running)[0])
        assert total == 3
        assert kernel.jams_used().tolist() == [3]


class TestScheduledEquivalence:
    def test_scheduled_batch_matches_serial_statistically(self):
        arrivals = factory(
            ScheduledArrivals,
            factory(Phase, factory(BatchArrivals, 60), duration=400),
            factory(Phase, factory(NoArrivals)),
        )
        specs = [
            scheduled_spec(arrivals, ramp_jam_factory(), seed=seed)
            for seed in range(1, 17)
        ]
        report = verify_vector_equivalence(specs)
        assert report.passed, report.render()

    def test_plan_equivalence_covers_only_vectorizable_groups(self):
        plan = SweepPlan()
        arrivals = factory(
            ScheduledArrivals,
            factory(Phase, factory(BatchArrivals, 40), duration=300),
            factory(Phase, factory(NoArrivals)),
        )
        vector_group = plan.add_group(
            BinaryExponentialBackoff(),
            factory(CompositeAdversary, arrivals, factory(NoJamming)),
            seeds=range(1, 13),
        )
        fallback_group = plan.add_group(
            BinaryExponentialBackoff(),
            factory(
                CompositeAdversary,
                factory(TraceArrivals, (40,) + (0,) * 20),
            ),
            seeds=range(1, 13),
        )
        reports = verify_plan_equivalence(plan)
        assert set(reports) == {vector_group}
        assert reports[vector_group].passed, reports[vector_group].render()

    def test_vector_backend_batches_scheduled_groups(self):
        plan = SweepPlan()
        arrivals = factory(
            ScheduledArrivals,
            factory(Phase, factory(BatchArrivals, 25), duration=200),
            factory(Phase, factory(NoArrivals)),
        )
        plan.add_group(
            BinaryExponentialBackoff(),
            factory(CompositeAdversary, arrivals, ramp_jam_factory()),
            seeds=[1, 2, 3, 4],
        )
        backend = VectorBackend()
        results = plan.run(backend)
        assert backend.vectorized_jobs == 4
        assert backend.fallback_jobs == 0
        assert backend.vector_groups == 1
        assert all(result.num_arrivals == 25 for result in results.results)
