"""Tests for the aggregation layer (`repro.observe`).

The load-bearing invariants:

* the full observe stack (registry sink, resource sampler, perf
  recording) is RNG- and result-inert — store fingerprints with it on
  and off are bit-identical on serial, processes, and vector backends;
* Prometheus text exposition conforms: valid metric names, exactly one
  HELP/TYPE pair per family, spec-compliant label escaping;
* resource sampling inherits the JSONL SIGKILL contract — a kill
  mid-sampling leaves a parseable file;
* `perf regress` passes a flat history (self-compare) and exits non-zero
  on an injected sustained slowdown.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.statistics import quantile
from repro.campaigns import campaign_status_rows, start_campaign
from repro.cli import main
from repro.exec import make_backend
from repro.observe import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    RegistrySink,
    ResourceSampler,
    backend_layout_name,
    detect_drift,
    escape_label_value,
    fold_events,
    host_fingerprint,
    make_sampler,
    record_scenario_perf,
    regress_groups,
    registry_to_dict,
    render_html_report,
    render_worker_table,
    sample_process,
    svg_sparkline,
    to_json,
    to_prometheus,
    unit_imbalance,
    worker_utilization,
)
from repro.observe.registry import METRIC_NAME_RE
from repro.scenarios.spec import scenario_from_dict
from repro.store import ResultsStore
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    TelemetrySession,
    activated,
    filter_events,
    read_events,
)

SCENARIO = {
    "id": "observe-mixed",
    "title": "Observe test scenario",
    "protocols": ["binary-exponential", "low-sensing"],
    "max_slots": 1500,
    "replications": 3,
    "arrivals": {"kind": "batch", "n": 12},
}


def _span(name, dur, *, backend="serial", kind="phase", ts=10.0, **attrs):
    return {
        "ts": ts,
        "run": "r1",
        "ev": "span",
        "name": name,
        "dur": dur,
        "attrs": {"kind": kind, "backend": backend, **attrs},
    }


class TestQuantile:
    def test_linear_interpolation_matches_numpy_default(self):
        np = pytest.importorskip("numpy")
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 1.0):
            assert quantile(values, q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "help")
        counter.inc(2, backend="serial")
        counter.inc(3, backend="serial")
        counter.inc(1, backend="vector")
        assert counter.value(backend="serial") == 5
        assert counter.value(backend="vector") == 1

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_keeps_last_value(self):
        gauge = MetricsRegistry().gauge("rss_bytes")
        gauge.set(10, pid="1")
        gauge.set(7, pid="1")
        assert gauge.value(pid="1") == 7
        assert gauge.value(pid="2") is None

    def test_histogram_snapshot_has_quantiles(self):
        histogram = MetricsRegistry().histogram("dur_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == 10
        assert snapshot["p50"] == pytest.approx(2.5)
        assert histogram.snapshot(other="x") is None

    def test_get_or_create_is_idempotent_but_type_strict(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        with pytest.raises(MetricError):
            registry.gauge("a_total")

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("0starts-with-digit")
        with pytest.raises(MetricError):
            registry.counter("ok_total").inc(1, **{"bad:label": "x"})


class TestFoldEvents:
    def test_spans_counters_events_sessions_all_fold(self):
        events = [
            {"ts": 1.0, "run": "r", "ev": "session_start", "argv": []},
            _span("simulate", 0.5),
            _span("simulate", 1.5),
            {"ts": 2.0, "run": "r", "ev": "counter", "name": "slots",
             "value": 100, "attrs": {"backend": "serial"}},
            {"ts": 3.0, "run": "r", "ev": "event", "name": "fallback",
             "attrs": {"reason": "protocol"}},
            {"ts": 4.0, "run": "r", "ev": "progress", "label": "x",
             "done": 1, "total": 2},
            {"ts": 5.0, "run": "r", "ev": "session_end", "elapsed_seconds": 4.0},
        ]
        registry = fold_events(events)
        spans = registry.get("repro_span_seconds")
        snapshot = spans.snapshot(name="simulate", kind="phase", backend="serial")
        assert snapshot["count"] == 2 and snapshot["sum"] == 2.0
        assert registry.get("repro_counter_total").value(
            name="slots", backend="serial"
        ) == 100
        assert registry.get("repro_events_total").value(
            name="fallback", reason="protocol"
        ) == 1
        assert registry.get("repro_sessions_total").value(phase="end") == 1

    def test_resource_samples_become_gauges_with_rss_peak(self):
        def sample(rss, cpu):
            return {"ts": 0, "run": "r", "ev": "event", "name": "resource_sample",
                    "attrs": {"pid": 42, "source": "parent",
                              "rss_bytes": rss, "cpu_seconds": cpu, "fds": 7}}

        registry = fold_events([sample(100, 0.1), sample(300, 0.2), sample(200, 0.3)])
        assert registry.get("repro_resource_rss_bytes").value(
            pid="42", source="parent"
        ) == 200  # last value
        assert registry.get("repro_resource_rss_peak_bytes").value(
            pid="42", source="parent"
        ) == 300  # high-water mark
        assert registry.get("repro_resource_cpu_seconds").value(
            pid="42", source="parent"
        ) == pytest.approx(0.3)
        assert registry.get("repro_resource_open_fds").value(
            pid="42", source="parent"
        ) == 7

    def test_registry_sink_folds_a_live_session(self):
        sink = RegistrySink()
        session = TelemetrySession([sink])
        with session.span("simulate", kind="phase", backend="serial"):
            pass
        session.counter("slots", 50, backend="serial")
        session.close()
        assert sink.registry.get("repro_counter_total").value(
            name="slots", backend="serial"
        ) == 50
        assert sink.registry.get("repro_span_seconds").snapshot(
            name="simulate", kind="phase", backend="serial"
        )["count"] == 1


class TestPrometheusConformance:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs").inc(3, backend="serial")
        registry.gauge("repro_rss_bytes", "RSS").set(12345, pid="1")
        hist = registry.histogram("repro_dur_seconds", "Durations")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value, name="simulate")
        return registry

    def test_every_family_has_one_help_and_type_line(self):
        text = to_prometheus(self._registry())
        for name, exposition_type in (
            ("repro_jobs_total", "counter"),
            ("repro_rss_bytes", "gauge"),
            ("repro_dur_seconds", "summary"),
        ):
            assert text.count(f"# HELP {name} ") == 1
            assert text.count(f"# TYPE {name} {exposition_type}\n") == 1

    def test_all_sample_lines_have_valid_metric_names(self):
        for line in to_prometheus(self._registry()).splitlines():
            if not line or line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            assert METRIC_NAME_RE.match(name), line

    def test_histogram_exports_quantiles_sum_and_count(self):
        text = to_prometheus(self._registry())
        assert 'repro_dur_seconds{name="simulate",quantile="0.5"} 0.2' in text
        assert 'repro_dur_seconds_sum{name="simulate"}' in text
        assert 'repro_dur_seconds_count{name="simulate"} 3' in text

    def test_label_values_escape_backslash_quote_and_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        registry = MetricsRegistry()
        registry.counter("e_total").inc(1, reason='bad "quote"\nnewline\\slash')
        (line,) = [
            line
            for line in to_prometheus(registry).splitlines()
            if line.startswith("e_total{")
        ]
        assert line == 'e_total{reason="bad \\"quote\\"\\nnewline\\\\slash"} 1'
        # The escaped payload must stay on one physical line.
        assert "\n" not in line

    def test_labels_render_sorted_and_infinities_render_signed(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("inf"), z="1", a="2")
        text = to_prometheus(registry)
        assert 'g{a="2",z="1"} +Inf' in text

    def test_empty_registry_renders_empty_document(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_json_export_mirrors_the_registry(self):
        document = registry_to_dict(self._registry())
        by_name = {metric["name"]: metric for metric in document["metrics"]}
        assert by_name["repro_jobs_total"]["type"] == "counter"
        assert by_name["repro_jobs_total"]["samples"][0]["value"] == 3
        hist = by_name["repro_dur_seconds"]["samples"][0]
        assert hist["count"] == 3 and "p95" in hist
        # to_json round-trips
        assert json.loads(to_json(self._registry()))["metrics"]


class TestResourceSampling:
    def test_sample_process_reads_self(self):
        sample = sample_process()
        # /proc exists on every platform this suite targets in CI; degrade
        # gracefully elsewhere but require CPU at minimum (os.times fallback).
        assert "cpu_seconds" in sample
        if os.path.isdir("/proc/self"):
            assert sample["rss_bytes"] > 0
            assert sample["fds"] > 0

    def test_sampler_emits_entry_and_exit_samples(self):
        mem = MemorySink()
        session = TelemetrySession([mem])
        with ResourceSampler(session, interval=60.0):
            pass  # shorter than the interval: only the boundary samples
        session.close()
        samples = mem.events("resource_sample")
        assert len(samples) == 2
        assert all(record["attrs"]["source"] == "parent" for record in samples)
        assert all(record["attrs"]["pid"] == os.getpid() for record in samples)

    def test_sampler_interval_thread_produces_series(self):
        mem = MemorySink()
        session = TelemetrySession([mem])
        with ResourceSampler(session, interval=0.02):
            time.sleep(0.15)
        session.close()
        assert len(mem.events("resource_sample")) >= 4

    def test_sampler_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(TelemetrySession([MemorySink()]), interval=0.0)

    def test_make_sampler_null_paths(self):
        session = TelemetrySession([MemorySink()])
        assert make_sampler(None, 0.1).start() is None  # null sampler no-ops
        assert make_sampler(session, None) is make_sampler(None, 0.1)
        real = make_sampler(session, 0.1)
        assert isinstance(real, ResourceSampler)
        session.close()

    def test_pool_workers_contribute_job_boundary_samples(self):
        from repro.experiments.plan import RunSpec, factory
        from repro.adversary.arrivals import BatchArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.protocols.binary_exponential import BinaryExponentialBackoff

        specs = [
            RunSpec(
                protocol=BinaryExponentialBackoff(),
                adversary=factory(CompositeAdversary, factory(BatchArrivals, 10)),
                seed=seed,
                max_slots=1200,
            )
            for seed in (1, 2, 3, 4)
        ]
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            with make_backend("processes", workers=2) as backend:
                backend.run(specs)
        worker_samples = [
            record
            for record in mem.events("resource_sample")
            if record["attrs"]["source"] == "worker"
        ]
        if not os.path.isdir("/proc"):
            pytest.skip("worker samples need procfs")
        assert worker_samples
        pids = {record["attrs"]["pid"] for record in worker_samples}
        assert len(pids) == len(worker_samples)  # one sample per worker pid
        assert all(
            record["attrs"]["rss_bytes"] > 0 for record in worker_samples
        )


class TestWorkerUtilization:
    def _events(self):
        return [
            _span("simulate", 2.0, backend="processes", ts=12.0,
                  worker_pid=101, queue_wait=0.1),
            _span("simulate", 1.0, backend="processes", ts=13.0,
                  worker_pid=102, queue_wait=0.3),
            _span("simulate", 1.0, backend="processes", ts=14.0,
                  worker_pid=101, queue_wait=0.2),
        ]

    def test_folds_busy_jobs_and_queue_wait(self):
        summary = worker_utilization(self._events())
        assert summary["jobs"] == 3
        by_pid = {row["pid"]: row for row in summary["workers"]}
        assert by_pid["101"]["jobs"] == 2
        assert by_pid["101"]["busy_seconds"] == pytest.approx(3.0)
        # Envelope: earliest start 10.0 (ts 12 - dur 2), latest end 14.0.
        assert summary["wall_seconds"] == pytest.approx(4.0)
        assert by_pid["101"]["busy_fraction"] == pytest.approx(0.75)
        # Imbalance: busy 3.0 vs 1.0, mean 2.0 -> 1.5.
        assert summary["imbalance"] == pytest.approx(1.5)
        assert summary["queue_wait"]["count"] == 3
        assert summary["queue_wait"]["p50"] == pytest.approx(0.2)
        assert summary["queue_wait"]["max"] == pytest.approx(0.3)

    def test_none_without_worker_attribution(self):
        assert worker_utilization([_span("simulate", 1.0)]) is None
        assert worker_utilization([]) is None

    def test_render_worker_table(self):
        rendered = render_worker_table(worker_utilization(self._events()))
        assert "workers (process-pool attribution)" in rendered
        assert "101" in rendered and "102" in rendered
        assert "imbalance 1.50x" in rendered
        assert "queue wait" in rendered

    def test_unit_imbalance_edges(self):
        assert unit_imbalance([]) is None
        assert unit_imbalance([5.0]) is None
        assert unit_imbalance([0.0, 0.0]) is None
        assert unit_imbalance([1.0, 3.0]) == pytest.approx(1.5)

    def test_processes_backend_spans_feed_utilization(self):
        from repro.experiments.plan import RunSpec, factory
        from repro.adversary.arrivals import BatchArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.protocols.binary_exponential import BinaryExponentialBackoff

        specs = [
            RunSpec(
                protocol=BinaryExponentialBackoff(),
                adversary=factory(CompositeAdversary, factory(BatchArrivals, 8)),
                seed=seed,
                max_slots=1000,
            )
            for seed in (1, 2, 3)
        ]
        mem = MemorySink()
        with activated(TelemetrySession([mem])):
            with make_backend("processes", workers=2) as backend:
                backend.run(specs)
        summary = worker_utilization(mem.records)
        assert summary is not None
        assert summary["jobs"] == 3
        assert summary["queue_wait"]["count"] == 3

    def test_campaign_status_reports_unit_imbalance(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        start_campaign(store, scenario_from_dict(SCENARIO), backend_name="serial")
        (row,) = campaign_status_rows(store)
        # Two protocol units with real timings -> a defined index >= 1.
        assert row["unit_imbalance"] is not None
        assert row["unit_imbalance"] >= 1.0
        store.close()


class TestPerfHistory:
    def test_put_and_list_perf_samples(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        for seconds in (1.0, 1.1):
            store.put_perf_sample(
                spec_hash="abc", backend_layout="serial", host="h",
                seconds=seconds, runs=2, slots=100,
                slots_per_second=100 / seconds, label="demo",
            )
        rows = store.perf_sample_rows()
        assert [row["seconds"] for row in rows] == [1.0, 1.1]
        assert rows[0]["label"] == "demo"
        assert store.perf_sample_rows(spec_prefix="ab")
        assert not store.perf_sample_rows(spec_prefix="zz")
        assert store.stats()["perf_samples"] == 2
        store.close()

    def test_perf_samples_do_not_move_the_fingerprint(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        start_campaign(store, scenario_from_dict(SCENARIO), backend_name="serial")
        before = store.fingerprint()
        store.put_perf_sample(
            spec_hash="abc", backend_layout="serial", host="h", seconds=9.9
        )
        assert store.fingerprint() == before
        store.close()

    def test_record_scenario_perf_stores_one_sample(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        scenario = scenario_from_dict(SCENARIO)
        sample = record_scenario_perf(store, scenario, backend_name="serial")
        assert sample["spec_hash"] == scenario.content_hash()
        assert sample["backend_layout"] == "serial"
        assert sample["host"] == host_fingerprint()
        assert sample["runs"] == 6  # 2 protocols x 3 replications
        assert sample["slots"] > 0 and sample["seconds"] > 0
        (row,) = store.perf_sample_rows()
        assert row["label"] == f"{scenario.scenario_id}@default"
        # Recording is result-inert: no run rows, empty fingerprint.
        assert store.stats()["runs"] == 0
        store.close()

    def test_inject_sleep_env_slows_the_timed_region(self, tmp_path, monkeypatch):
        store = ResultsStore(tmp_path / "s")
        scenario = scenario_from_dict(dict(SCENARIO, replications=1, max_slots=200))
        baseline = record_scenario_perf(store, scenario, backend_name="serial")
        monkeypatch.setenv("REPRO_PERF_INJECT_SLEEP", "0.2")
        slowed = record_scenario_perf(store, scenario, backend_name="serial")
        assert slowed["seconds"] >= baseline["seconds"] + 0.15
        store.close()

    def test_backend_layout_names(self):
        assert backend_layout_name("serial", None) == "serial"
        assert backend_layout_name("vector", 4) == "vector"
        assert backend_layout_name("processes", 4) == "processes:w4"

    def test_host_fingerprint_is_stable_and_short(self):
        assert host_fingerprint() == host_fingerprint()
        assert re.fullmatch(r"[0-9a-f]{12}", host_fingerprint())


class TestDriftDetection:
    def test_insufficient_history(self):
        verdict = detect_drift([1.0, 1.0, 1.5], window=2)
        assert verdict["status"] == "insufficient"
        assert verdict["needed"] == 4

    def test_flat_history_is_ok(self):
        values = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 1.01, 0.99]
        verdict = detect_drift(values)
        assert verdict["status"] == "ok"
        assert verdict["ratio"] == pytest.approx(1.0, abs=0.05)

    def test_sustained_slowdown_is_drift(self):
        values = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 2.0, 2.05]
        verdict = detect_drift(values)
        assert verdict["status"] == "drift"
        assert verdict["ratio"] > 1.9
        assert verdict["p_value"] is not None and verdict["p_value"] < 0.05

    def test_material_but_insignificant_is_ok(self):
        # Baseline so noisy the 1.3x "slowdown" is statistically flat.
        values = [0.5, 2.0, 0.4, 2.2, 0.6, 1.9, 1.5, 1.6]
        verdict = detect_drift(values, factor=1.2)
        assert verdict["p_value"] is None or verdict["p_value"] >= 0.05
        assert verdict["status"] == "ok"

    def test_zero_variance_falls_back_to_factor_gate(self):
        drifted = detect_drift([1.0, 1.0, 1.0, 1.0, 2.0, 2.0])
        assert drifted["status"] == "drift" and drifted["p_value"] is None
        flat = detect_drift([1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        assert flat["status"] == "ok" and flat["p_value"] is None

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            detect_drift([1.0] * 8, window=0)

    def test_regress_groups_keeps_groups_separate(self):
        def row(spec, layout, seconds):
            return {"spec_hash": spec, "backend_layout": layout, "host": "h",
                    "seconds": seconds, "label": f"{spec}-label"}

        rows = [row("a", "serial", 1.0) for _ in range(6)]
        rows += [row("a", "serial", 3.0), row("a", "serial", 3.1)]
        rows += [row("b", "vector", 1.0) for _ in range(8)]
        verdicts = regress_groups(rows)
        by_key = {(v["spec_hash"], v["backend_layout"]): v for v in verdicts}
        assert by_key[("a", "serial")]["status"] == "drift"
        assert by_key[("a", "serial")]["label"] == "a-label"
        assert by_key[("b", "vector")]["status"] == "ok"


class TestObserveFingerprintInvariance:
    """The full observe stack on/off must be bit-identical per backend."""

    @pytest.mark.parametrize("backend", ["serial", "processes", "vector"])
    def test_campaign_fingerprints_match_with_observe_on_and_off(
        self, tmp_path, backend
    ):
        fingerprints = {}
        for mode in ("off", "on"):
            store = ResultsStore(tmp_path / f"{backend}-{mode}")
            if mode == "on":
                session = TelemetrySession(
                    [MemorySink(), RegistrySink(),
                     JsonlSink(tmp_path / f"{backend}.jsonl")]
                )
                sampler = ResourceSampler(session, interval=0.01)
            else:
                session, sampler = None, None
            with activated(session):
                if sampler is not None:
                    sampler.start()
                start_campaign(
                    store,
                    scenario_from_dict(SCENARIO),
                    backend_name=backend,
                    workers=2 if backend == "processes" else None,
                )
                if sampler is not None:
                    sampler.stop()
                    # Perf recording must also be inert.
                    record_scenario_perf(
                        store,
                        scenario_from_dict(dict(SCENARIO, replications=1)),
                        backend_name="serial",
                    )
            fingerprints[mode] = store.fingerprint()
            store.close()
        assert fingerprints["on"] == fingerprints["off"]


class TestSummarizeSatellites:
    def _write_two_sessions(self, path):
        first = TelemetrySession([JsonlSink(path)], run_id="firstrun")
        with first.span("sweep", kind="root", backend="serial"):
            with first.span("simulate", kind="phase", backend="serial"):
                pass
        first.close()
        second = TelemetrySession([JsonlSink(path)], run_id="secondrun")
        with second.span("sweep", kind="root", backend="vector"):
            pass
        second.close()

    def test_filter_events_by_prefix_and_last(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_two_sessions(path)
        events = read_events(path)
        only_first = filter_events(events, runs=["first"])
        assert {record["run"] for record in only_first} == {"firstrun"}
        only_last = filter_events(events, last=True)
        assert {record["run"] for record in only_last} == {"secondrun"}
        assert filter_events(events) == events
        assert filter_events(events, runs=["nomatch"]) == []

    def test_cli_run_and_last_filters(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_two_sessions(path)
        assert main(["telemetry", "summarize", str(path), "--run", "first",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == ["firstrun"]
        assert main(["telemetry", "summarize", str(path), "--last", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == ["secondrun"]
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", str(path), "--run", "zzz"])

    def test_span_tables_carry_p50_p95(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(path)])
        with session.span("sweep", kind="root", backend="serial"):
            for duration in (0.0, 0.0, 0.0):
                session.span_record(
                    "simulate", duration, kind="phase", backend="serial"
                )
        session.close()
        assert main(["telemetry", "summarize", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        (phase_row,) = summary["phases"]
        assert "p50" in phase_row and "p95" in phase_row
        assert phase_row["p50"] <= phase_row["p95"] <= phase_row["max"]
        assert main(["telemetry", "summarize", str(path)]) == 0
        rendered = capsys.readouterr().out
        assert "p50_s" in rendered and "p95_s" in rendered

    def test_read_events_streams_lazily(self, tmp_path):
        from repro.telemetry import iter_events

        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "counter"}\n{"ev": "span"}\n{"truncated',
                        encoding="utf-8")
        iterator = iter_events(path)
        assert next(iterator)["ev"] == "counter"
        assert next(iterator)["ev"] == "span"
        with pytest.raises(StopIteration):
            next(iterator)  # truncated tail tolerated
        assert len(read_events(path)) == 2


class TestSigkillDuringSampling:
    def test_jsonl_readable_after_sigkill_with_resource_sampling(self, tmp_path):
        """A kill mid-sampling leaves a parseable file with samples in it."""
        scenario = dict(SCENARIO)
        scenario["max_slots"] = 200_000
        scenario["replications"] = 6
        scenario["arrivals"] = {"kind": "poisson", "rate": 0.4}
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(json.dumps(scenario))
        tele_path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                str(scenario_file),
                "--backend", "serial",
                "--checkpoint-every", "1",
                "--store", str(tmp_path / "store"),
                "--telemetry", str(tele_path),
                "--sample-resources", "0.01",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        sampled = False
        while time.monotonic() < deadline:
            if tele_path.exists() and b"resource_sample" in tele_path.read_bytes():
                sampled = True
                break
            if process.poll() is not None:
                break
            time.sleep(0.02)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        assert tele_path.exists()
        events = read_events(tele_path)
        assert events, "events written before the kill must parse"
        if sampled:
            samples = [
                record for record in events
                if record.get("ev") == "event"
                and record.get("name") == "resource_sample"
            ]
            assert samples, "observed samples must survive the kill"
            registry = fold_events(events)
            assert registry.get("repro_resource_rss_bytes") is not None


class TestPerfCli:
    def _scenario_file(self, tmp_path):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(
            json.dumps(dict(SCENARIO, replications=1, max_slots=300))
        )
        return str(scenario_file)

    def test_record_history_and_self_regress_pass(self, tmp_path, capsys):
        scenario = self._scenario_file(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["perf", "record", scenario, "--store", store_dir,
                     "--repeat", "4"]) == 0
        capsys.readouterr()
        assert main(["perf", "history", "--store", store_dir, "--json"]) == 0
        history = json.loads(capsys.readouterr().out)
        assert len(history["samples"]) == 4
        assert main(["perf", "regress", "--store", store_dir]) == 0
        assert "ok" in capsys.readouterr().out

    def test_injected_slowdown_fails_regress(self, tmp_path, capsys, monkeypatch):
        scenario = self._scenario_file(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["perf", "record", scenario, "--store", store_dir,
                     "--repeat", "4"]) == 0
        monkeypatch.setenv("REPRO_PERF_INJECT_SLEEP", "0.3")
        assert main(["perf", "record", scenario, "--store", store_dir,
                     "--repeat", "2"]) == 0
        monkeypatch.delenv("REPRO_PERF_INJECT_SLEEP")
        capsys.readouterr()
        assert main(["perf", "regress", "--store", store_dir]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_regress_json_reports_groups(self, tmp_path, capsys):
        scenario = self._scenario_file(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["perf", "record", scenario, "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["perf", "regress", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["drifted"] == 0
        assert payload["groups"][0]["status"] == "insufficient"

    def test_usage_errors_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "record", "no-such-scenario",
                  "--store", str(tmp_path / "s")])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "history", "--store", str(tmp_path / "missing")])
        assert excinfo.value.code == 2


class TestReportCli:
    def test_html_report_for_a_campaign(self, tmp_path, capsys):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(json.dumps(SCENARIO))
        store_dir = str(tmp_path / "store")
        tele_path = tmp_path / "t.jsonl"
        assert main(["campaign", "run", str(scenario_file),
                     "--backend", "serial", "--store", store_dir,
                     "--telemetry", str(tele_path), "--dynamics"]) == 0
        store = ResultsStore(Path(store_dir))
        (campaign,) = store.list_campaigns()
        store.close()
        out_path = tmp_path / "report.html"
        assert main(["report", "html", "--store", store_dir,
                     "--campaign", campaign["campaign_id"],
                     "--telemetry", str(tele_path),
                     "--out", str(out_path)]) == 0
        document = out_path.read_text(encoding="utf-8")
        assert document.startswith("<!DOCTYPE html>")
        assert "<svg" in document  # sparklines and/or phase bars
        assert "Phase wall-clock" in document
        assert "Campaign" in document
        assert "Trajectory" in document
        assert campaign["campaign_id"] in document

    def test_html_report_from_telemetry_only(self, tmp_path, capsys):
        tele_path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(tele_path)])
        with session.span("sweep", kind="root", backend="serial"):
            session.span_record("simulate", 0.5, kind="phase", backend="serial")
        session.close()
        assert main(["report", "html", "--telemetry", str(tele_path),
                     "--store", str(tmp_path / "no-store")]) == 0
        document = capsys.readouterr().out
        assert "Phase wall-clock" in document

    def test_html_escapes_untrusted_strings(self):
        events = [_span("<script>alert(1)</script>", 1.0)]
        document = render_html_report(events=events, title="<b>t</b>")
        assert "<script>alert(1)" not in document
        assert "&lt;script&gt;" in document
        assert "<title>&lt;b&gt;t&lt;/b&gt;</title>" in document

    def test_report_without_inputs_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "html", "--store", str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_unknown_campaign_is_a_usage_error(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        store.close()
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "html", "--store", str(tmp_path / "s"),
                  "--campaign", "nope"])
        assert excinfo.value.code == 2

    def test_metrics_export_prometheus_and_json(self, tmp_path, capsys):
        tele_path = tmp_path / "t.jsonl"
        session = TelemetrySession([JsonlSink(tele_path)])
        session.counter("slots_simulated", 500, backend="serial")
        session.close()
        assert main(["report", "metrics", str(tele_path)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_counter_total counter" in text
        assert 'repro_counter_total{backend="serial",name="slots_simulated"} 500' in text
        assert main(["report", "metrics", str(tele_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(
            metric["name"] == "repro_counter_total"
            for metric in payload["metrics"]
        )

    def test_sample_resources_requires_telemetry(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "e1", "--scale", "smoke", "--sample-resources"])
        assert excinfo.value.code == 2


class TestSvgSparkline:
    def test_empty_and_constant_series(self):
        assert svg_sparkline([]) == ""
        constant = svg_sparkline([2.0, 2.0, 2.0])
        assert constant.startswith("<svg")
        assert "polyline" in constant

    def test_long_series_is_downsampled(self):
        document = svg_sparkline(list(range(10_000)), width=100)
        points = document.split('polyline class="spark" points="')[1].split('"')[0]
        assert len(points.split()) <= 52  # max_points = width // 2 + rounding
