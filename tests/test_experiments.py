"""Tests for the experiment harness (specs, runner, smoke runs, reporting)."""

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.core.low_sensing import LowSensingBackoff
from repro.experiments.experiments import (
    ALL_EXPERIMENTS,
    run_e1_throughput_batch,
    run_e6_reactive,
    run_e9_potential_drift,
)
from repro.experiments.reporting import render_report
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import ExperimentReport, ExperimentSpec, check_scale


class TestSpec:
    def test_check_scale(self):
        assert check_scale("smoke") == "smoke"
        with pytest.raises(ValueError):
            check_scale("huge")

    def test_report_columns_and_filters(self):
        spec = ExperimentSpec("EX", "title", "claim", "bench")
        report = ExperimentReport(spec=spec)
        report.add_row({"protocol": "a", "n": 1, "throughput": 0.5})
        report.add_row({"protocol": "b", "n": 1, "throughput": 0.2})
        assert report.column("throughput") == [0.5, 0.2]
        assert report.rows_where(protocol="a")[0]["throughput"] == 0.5
        with pytest.raises(KeyError):
            report.column("missing")

    def test_empty_exp_id_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("", "t", "c", "b")


class TestSweepRunner:
    def test_aggregate_row_contains_sweep_columns(self):
        runner = SweepRunner(seeds=[1, 2])
        row = runner.aggregate_row(
            LowSensingBackoff(),
            lambda: CompositeAdversary(BatchArrivals(20)),
            extra_columns={"n": 20},
        )
        assert row["protocol"] == "low-sensing"
        assert row["n"] == 20
        assert row["replicates"] == 2
        assert row["arrivals"] == 20
        assert row["delivered"] == 20
        assert 0.0 < row["throughput"] <= 1.0
        assert row["drained"]

    def test_requires_at_least_one_seed(self):
        with pytest.raises(ValueError):
            SweepRunner(seeds=[])


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "A1",
        }

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_e1_throughput_batch(scale="enormous")


class TestSmokeRuns:
    """Each experiment must run end-to-end at smoke scale and produce rows."""

    @pytest.mark.parametrize("exp_id", sorted(ALL_EXPERIMENTS))
    def test_experiment_produces_rows_and_renders(self, exp_id):
        report = ALL_EXPERIMENTS[exp_id](scale="smoke")
        assert report.rows, f"{exp_id} produced no rows"
        rendered = render_report(report)
        assert report.spec.exp_id in rendered
        assert "Claim:" in rendered

    def test_e1_smoke_shows_low_sensing_beats_beb(self):
        report = run_e1_throughput_batch(scale="smoke")
        lsb = report.rows_where(protocol="low-sensing")
        beb = report.rows_where(protocol="binary-exponential")
        assert min(r["throughput"] for r in lsb) > max(r["throughput"] for r in beb)

    def test_e6_smoke_victim_pays_more_than_average(self):
        report = run_e6_reactive(scale="smoke")
        jammed_rows = [r for r in report.rows if r["jam_budget"] > 0]
        assert all(r["victim_accesses"] > r["mean_accesses"] for r in jammed_rows)

    def test_e9_smoke_potential_bounded(self):
        report = run_e9_potential_drift(scale="smoke")
        assert all(row["max_potential_over_n_plus_j"] < 50.0 for row in report.rows)
        assert all(row["fraction_negative_drift"] > 0.2 for row in report.rows)
