"""Vector-vs-scalar statistical equivalence (`repro.analysis.equivalence`).

The two engines draw differently shaped random streams, so their outputs
can only be compared in distribution.  These tests run modest replicated
workloads through both engines and require the harness to pass — they are
deterministic given the seed lists, so a pass here is stable, not flaky.
"""

from __future__ import annotations

import pytest

from repro.adversary.arrivals import BatchArrivals, PoissonArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BernoulliJamming, PeriodicJamming
from repro.analysis.equivalence import (
    compare_result_sets,
    verify_vector_equivalence,
)
from repro.exec import SerialBackend
from repro.experiments.plan import RunSpec, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff

SEEDS = tuple(range(1, 13))


def specs_for(protocol, adversary, seeds=SEEDS, **kwargs):
    return [
        RunSpec(protocol=protocol, adversary=adversary, seed=seed, **kwargs)
        for seed in seeds
    ]


class TestVectorMatchesScalarStatistically:
    @pytest.mark.parametrize(
        "protocol",
        [
            BinaryExponentialBackoff(),
            PolynomialBackoff(),
            FixedProbabilityProtocol.tuned_for(60),
        ],
        ids=lambda p: p.name,
    )
    def test_batch_workload(self, protocol):
        adversary = factory(CompositeAdversary, factory(BatchArrivals, 60))
        report = verify_vector_equivalence(specs_for(protocol, adversary))
        assert report.passed, report.render()

    def test_jammed_batch_workload(self):
        adversary = factory(
            CompositeAdversary,
            factory(BatchArrivals, 50),
            factory(PeriodicJamming, period=7, budget=30),
        )
        report = verify_vector_equivalence(
            specs_for(BinaryExponentialBackoff(), adversary)
        )
        assert report.passed, report.render()

    def test_poisson_bernoulli_workload(self):
        adversary = factory(
            CompositeAdversary,
            factory(PoissonArrivals, rate=0.04, horizon=1200),
            factory(BernoulliJamming, probability=0.05, budget=20),
        )
        report = verify_vector_equivalence(
            specs_for(BinaryExponentialBackoff(), adversary, max_slots=20_000)
        )
        assert report.passed, report.render()

    def test_report_includes_determinism_check(self):
        adversary = factory(CompositeAdversary, factory(BatchArrivals, 30))
        report = verify_vector_equivalence(
            specs_for(PolynomialBackoff(), adversary, seeds=range(1, 7))
        )
        metrics = {c.metric for c in report.comparisons}
        assert "vector_determinism" in metrics
        assert "throughput" in metrics
        assert "latency_distribution" in metrics

    def test_rejects_non_vectorizable_specs(self):
        from repro.adversary.arrivals import TraceArrivals

        adversary = factory(
            CompositeAdversary,
            factory(TraceArrivals, [10, 0, 0]),
        )
        with pytest.raises(ValueError, match="cannot vectorize"):
            verify_vector_equivalence(specs_for(PolynomialBackoff(), adversary))


class TestHarnessDetectsRealDifferences:
    def test_different_protocols_fail_the_harness(self):
        """Negative control: comparing two genuinely different systems
        (well-tuned vs badly mistuned fixed probability) must FAIL."""
        adversary = factory(CompositeAdversary, factory(BatchArrivals, 20))
        tuned = SerialBackend().run(
            specs_for(FixedProbabilityProtocol.tuned_for(20), adversary, max_slots=3_000)
        )
        mistuned = SerialBackend().run(
            specs_for(
                FixedProbabilityProtocol(probability=0.4), adversary, max_slots=3_000
            )
        )
        report = compare_result_sets(tuned, mistuned)
        assert not report.passed
        assert report.failures()
