"""Tests for the (λ, S) adversarial-queuing constraint and backlog statistics."""

import pytest

from repro.queueing.backlog import backlog_statistics
from repro.queueing.model import QueueingConstraint


class TestQueueingConstraint:
    def test_window_budget(self):
        assert QueueingConstraint(rate=0.2, granularity=100).window_budget == 20
        assert QueueingConstraint(rate=0.25, granularity=10).window_budget == 2

    def test_admissible_sequence(self):
        constraint = QueueingConstraint(rate=0.5, granularity=4)
        arrivals = [1, 1, 0, 0, 0, 2, 0, 0]
        jammed = [False] * 8
        assert constraint.is_admissible(arrivals, jammed)

    def test_jamming_counts_against_the_budget(self):
        constraint = QueueingConstraint(rate=0.5, granularity=4)
        arrivals = [2, 0, 0, 0]
        jammed = [False, True, False, False]
        assert not constraint.is_admissible(arrivals, jammed)

    def test_sliding_windows_are_stricter_than_aligned(self):
        # Two bursts that straddle an aligned window boundary.
        arrivals = [0, 0, 0, 2, 2, 0, 0, 0]
        jammed = [False] * 8
        aligned = QueueingConstraint(rate=0.5, granularity=4, sliding=False)
        sliding = QueueingConstraint(rate=0.5, granularity=4, sliding=True)
        assert aligned.is_admissible(arrivals, jammed)
        assert not sliding.is_admissible(arrivals, jammed)

    def test_window_loads_aligned(self):
        constraint = QueueingConstraint(rate=0.5, granularity=3, sliding=False)
        loads = constraint.window_loads([1, 0, 2, 0, 1, 0, 3], [False] * 7)
        assert loads == [3, 1, 3]

    def test_window_loads_sliding(self):
        constraint = QueueingConstraint(rate=0.5, granularity=2, sliding=True)
        loads = constraint.window_loads([1, 0, 2, 1], [False] * 4)
        assert loads == [1, 2, 3]

    def test_short_execution_single_window(self):
        constraint = QueueingConstraint(rate=0.5, granularity=10)
        assert constraint.window_loads([1, 1], [False, False]) == [2]

    def test_empty_execution(self):
        constraint = QueueingConstraint(rate=0.5, granularity=10)
        assert constraint.window_loads([], []) == []
        assert constraint.max_window_load([], []) == 0

    def test_max_window_load(self):
        constraint = QueueingConstraint(rate=0.5, granularity=2)
        assert constraint.max_window_load([3, 0, 1, 1], [False] * 4) == 3

    def test_length_mismatch_rejected(self):
        constraint = QueueingConstraint(rate=0.5, granularity=2)
        with pytest.raises(ValueError):
            constraint.window_loads([1], [])

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueingConstraint(rate=1.0, granularity=10)
        with pytest.raises(ValueError):
            QueueingConstraint(rate=0.5, granularity=0)


class TestBacklogStatistics:
    def test_basic_statistics(self):
        stats = backlog_statistics([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert stats.max_backlog == 9
        assert stats.mean_backlog == pytest.approx(4.5)
        assert stats.final_backlog == 9
        assert stats.num_slots == 10
        assert stats.p50_backlog in (4.0, 5.0)

    def test_quantiles_ordered(self):
        stats = backlog_statistics(list(range(101)))
        assert stats.p50_backlog <= stats.p95_backlog <= stats.p99_backlog <= stats.max_backlog

    def test_normalised_by_granularity(self):
        stats = backlog_statistics([10, 20, 30])
        normalised = stats.normalised(10)
        assert normalised["max_over_s"] == pytest.approx(3.0)

    def test_normalised_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            backlog_statistics([1]).normalised(0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            backlog_statistics([])
