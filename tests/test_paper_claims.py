"""Integration tests that check the paper's qualitative claims at small scale.

These are the shape checks the reproduction stands on: constant-ish
throughput for LOW-SENSING BACKOFF where binary exponential backoff decays,
polylog-like energy growth, robustness to jamming, bounded backlog under
adversarial-queuing arrivals, and the reactive-adversary worst-vs-average
energy separation.  Thresholds are deliberately loose: they encode the
direction and rough magnitude of each effect, not exact constants.
"""

import math

import pytest

from repro.adversary.arrivals import AdversarialQueueingArrivals, BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BurstJamming,
    ReactiveTargetedJammer,
)
from repro.core.low_sensing import LowSensingBackoff
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

from tests.conftest import run_batch


def mean(values):
    values = list(values)
    return sum(values) / len(values)


class TestConstantThroughput:
    """Corollary 1.4 versus the O(1/ln N) behaviour of BEB."""

    SIZES = (50, 200, 600)
    SEEDS = (3, 17)

    def _throughputs(self, protocol_factory):
        by_size = {}
        for n in self.SIZES:
            by_size[n] = mean(
                run_batch(protocol_factory(), n, seed=seed).throughput
                for seed in self.SEEDS
            )
        return by_size

    def test_low_sensing_throughput_does_not_collapse_with_n(self):
        throughputs = self._throughputs(LowSensingBackoff)
        assert all(value > 0.15 for value in throughputs.values())
        # Larger batches amortise the fixed tail, so throughput should not
        # degrade by more than a small factor from the smallest size.
        assert throughputs[self.SIZES[-1]] >= 0.6 * throughputs[self.SIZES[0]]

    def test_beb_throughput_degrades_with_n(self):
        throughputs = self._throughputs(BinaryExponentialBackoff)
        assert throughputs[self.SIZES[-1]] < 0.6 * throughputs[self.SIZES[0]]

    def test_low_sensing_beats_beb_at_moderate_scale(self):
        lsb = mean(run_batch(LowSensingBackoff(), 400, seed=s).throughput for s in self.SEEDS)
        beb = mean(
            run_batch(BinaryExponentialBackoff(), 400, seed=s).throughput for s in self.SEEDS
        )
        assert lsb > 3.0 * beb

    def test_full_sensing_mw_also_constant_but_comparable(self):
        lsb = run_batch(LowSensingBackoff(), 300, seed=3).throughput
        mw = run_batch(FullSensingMultiplicativeWeights(), 300, seed=3).throughput
        assert mw > 0.15
        assert lsb > 0.4 * mw


class TestEnergyEfficiency:
    """Theorem 1.6 (polylog accesses) and the E8 trade-off claim."""

    def test_accesses_grow_much_slower_than_n(self):
        small = run_batch(LowSensingBackoff(), 100, seed=5).energy_statistics()
        large = run_batch(LowSensingBackoff(), 800, seed=5).energy_statistics()
        growth = large.mean_accesses / small.mean_accesses
        assert growth < 4.0  # an 8x larger batch costs well under 8x accesses

    def test_accesses_within_polylog_envelope(self):
        for n, seed in ((200, 1), (400, 2), (800, 3)):
            stats = run_batch(LowSensingBackoff(), n, seed=seed).energy_statistics()
            envelope = 3.0 * math.log(n) ** 3
            assert stats.mean_accesses < envelope
            assert stats.max_accesses < 60.0 * math.log(n) ** 2 * math.log(n)

    def test_low_sensing_listens_less_than_full_sensing(self):
        lsb = run_batch(LowSensingBackoff(), 300, seed=7).energy_statistics()
        mw = run_batch(FullSensingMultiplicativeWeights(), 300, seed=7).energy_statistics()
        assert mw.mean_accesses > 1.5 * lsb.mean_accesses

    def test_beb_is_send_cheap_but_slow(self):
        beb_result = run_batch(BinaryExponentialBackoff(), 300, seed=7)
        lsb_result = run_batch(LowSensingBackoff(), 300, seed=7)
        assert beb_result.energy_statistics().mean_accesses < (
            lsb_result.energy_statistics().mean_accesses
        )
        assert beb_result.num_active_slots > 2.0 * lsb_result.num_active_slots


class TestJammingRobustness:
    """Corollary 1.4 with J > 0: (T+J)/S stays bounded away from zero."""

    @pytest.mark.parametrize(
        "jammer_factory",
        [
            lambda: BernoulliJamming(probability=0.2, budget=200),
            lambda: BurstJamming(start=30, length=150),
            lambda: AdaptiveContentionJammer(budget=200, target_regime="good"),
        ],
    )
    def test_throughput_with_jamming(self, jammer_factory):
        result = run_batch(LowSensingBackoff(), 200, seed=9, jammer=jammer_factory())
        assert result.num_delivered == 200
        assert result.throughput > 0.12

    def test_energy_still_polylog_with_jamming(self):
        result = run_batch(
            LowSensingBackoff(),
            200,
            seed=9,
            jammer=BernoulliJamming(probability=0.3, budget=400),
        )
        n_plus_j = 200 + result.num_jammed_active
        assert result.energy_statistics().mean_accesses < 3.0 * math.log(n_plus_j) ** 3

    def test_recovery_after_jamming_burst(self):
        # Everything is jammed for a while; afterwards the system drains.
        result = run_batch(
            LowSensingBackoff(), 100, seed=4, jammer=BurstJamming(start=0, length=300)
        )
        assert result.drained
        assert result.num_delivered == 100


class TestAdversarialQueueing:
    """Corollary 1.5 (bounded backlog) and Theorem 1.7 (polylog energy)."""

    def run_queueing(self, granularity: int, seed: int = 11, rate: float = 0.2):
        horizon = granularity * 25
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(
                AdversarialQueueingArrivals(
                    rate=rate,
                    granularity=granularity,
                    placement="front",
                    horizon=horizon,
                )
            ),
            seed=seed,
            max_slots=horizon * 4,
        )
        return Simulator(config).run()

    def test_backlog_bounded_by_multiple_of_granularity(self):
        for granularity in (100, 300):
            result = self.run_queueing(granularity)
            assert max(result.backlog_series()) <= 2.0 * granularity

    def test_implicit_throughput_stays_constant(self):
        result = self.run_queueing(200)
        series = result.implicit_throughput_series()
        tail = series[200:]
        assert min(tail) > 0.1

    def test_energy_polylog_in_granularity(self):
        result = self.run_queueing(200)
        stats = result.energy_statistics(departed_only=True)
        assert stats.mean_accesses < 3.0 * math.log(200) ** 3

    def test_system_keeps_up_with_arrivals(self):
        result = self.run_queueing(150)
        # At a low arrival rate the system repeatedly drains: the final
        # backlog is a small fraction of everything that arrived.
        assert result.num_delivered > 0.9 * result.num_arrivals


class TestReactiveAdversary:
    """Theorem 1.9: targeted packets pay ~linear-in-J, the average does not."""

    def test_victim_vs_average_accesses(self):
        budget = 60
        result = run_batch(
            LowSensingBackoff(),
            150,
            seed=13,
            jammer=ReactiveTargetedJammer(budget=budget, target_index=0),
        )
        victim = next(p for p in result.packets if p.packet_id == 0)
        others = [p for p in result.packets if p.packet_id != 0]
        average_others = mean(p.channel_accesses for p in others)
        assert victim.channel_accesses >= budget
        assert victim.channel_accesses > 3.0 * average_others
        # The average over all packets stays within a polylog envelope.
        overall = result.energy_statistics().mean_accesses
        assert overall < 5.0 * math.log(150 + budget) ** 3

    def test_victim_eventually_succeeds_once_budget_exhausted(self):
        result = run_batch(
            LowSensingBackoff(),
            50,
            seed=13,
            jammer=ReactiveTargetedJammer(budget=20, target_index=0),
        )
        assert result.drained
        assert all(p.departed for p in result.packets)


class TestPotentialDrift:
    """Theorem 5.18 / Corollary 5.22, measured on a real execution."""

    def test_max_potential_linear_in_arrivals(self):
        for n in (100, 300):
            result = run_batch(LowSensingBackoff(), n, seed=6, collect_potential=True)
            assert result.potential.max_potential() < 12.0 * n

    def test_potential_hits_zero_when_drained(self):
        result = run_batch(LowSensingBackoff(), 80, seed=6, collect_potential=True)
        assert result.drained
        assert result.potential.samples[-1].potential == 0.0

    def test_majority_of_mass_moves_downhill(self):
        result = run_batch(LowSensingBackoff(), 300, seed=6, collect_potential=True)
        drifts = result.potential.interval_drifts()
        total_drift = sum(d for _, _, d in drifts)
        assert total_drift < 0.0
