"""Budget-exhaustion edge cases across every budgeted jammer.

The paper's bounds are parameterised by the *realised* number of jammed
slots, so `_BudgetedJammer` bookkeeping must be exact: a zero budget means
zero jams, an exhausted budget silences the strategy mid-attack, and a
schedule phase boundary resets to the next phase's own budget (budgets are
per phase, never shared).
"""

from __future__ import annotations

from random import Random

import pytest

from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.adversary.scheduled import ScheduledJamming
from repro.adversary.arrivals import BatchArrivals
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.scenarios.schedule import Phase
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def view_at(slot: int, active: tuple = (0,), contention: float = 1.0) -> SystemView:
    return SystemView(slot=slot, active_packets=active, contention=contention)


def drive(jammer, slots: int, rng: Random) -> list[bool]:
    """Per-slot adaptive + reactive decisions with one sender present."""
    decisions = []
    for slot in range(slots):
        view = view_at(slot)
        jammed = jammer.jam(view, rng)
        if not jammed and jammer.reactive:
            jammed = jammer.reactive_jam(view, (0,), rng)
        decisions.append(jammed)
    return decisions


#: Every budgeted strategy, built with the given budget and parameters
#: that would jam *every* slot of `drive` if the budget were unlimited.
ALWAYS_JAMMING = [
    pytest.param(lambda b: BernoulliJamming(1.0, budget=b, only_active=False), id="bernoulli"),
    pytest.param(lambda b: BernoulliJamming(1.0, budget=b, only_active=True), id="bernoulli-active"),
    pytest.param(lambda b: PeriodicJamming(period=1, budget=b), id="periodic"),
    pytest.param(lambda b: BurstJamming(start=0, length=10**6, budget=b), id="burst"),
    pytest.param(
        lambda b: AdaptiveContentionJammer(budget=b, target_regime="any"),
        id="adaptive-contention",
    ),
    pytest.param(
        lambda b: ReactiveTargetedJammer(budget=b, target_index=0),
        id="reactive-targeted",
    ),
    pytest.param(lambda b: ReactiveSuccessJammer(budget=b), id="reactive-success"),
]


class TestZeroBudget:
    @pytest.mark.parametrize("build", ALWAYS_JAMMING)
    def test_zero_budget_never_jams(self, build, rng):
        jammer = build(0)
        assert drive(jammer, 50, rng) == [False] * 50
        assert jammer.jams_used() == 0

    def test_budgeted_random_zero_budget(self, rng):
        jammer = BudgetedRandomJamming(budget=0, horizon=100)
        assert drive(jammer, 100, rng) == [False] * 100
        assert jammer.jams_used() == 0


class TestExhaustionMidAttack:
    @pytest.mark.parametrize("build", ALWAYS_JAMMING)
    def test_budget_caps_realised_jams_exactly(self, build, rng):
        jammer = build(7)
        decisions = drive(jammer, 200, rng)
        assert decisions[:7] == [True] * 7
        assert not any(decisions[7:])
        assert jammer.jams_used() == 7

    def test_budget_hit_mid_burst(self, rng):
        # The burst wants slots 5..14, the budget dies after 4 jams.
        jammer = BurstJamming(start=5, length=10, budget=4)
        decisions = [jammer.jam(view_at(slot), rng) for slot in range(20)]
        assert [slot for slot, jammed in enumerate(decisions) if jammed] == [5, 6, 7, 8]
        assert jammer.jams_used() == 4

    def test_budget_spans_burst_repetitions(self, rng):
        # Repeating 3-slot bursts every 10 slots; budget 5 dies inside the
        # second repetition.
        jammer = BurstJamming(start=0, length=3, period=10, budget=5)
        decisions = [jammer.jam(view_at(slot), rng) for slot in range(30)]
        assert [slot for slot, jammed in enumerate(decisions) if jammed] == [
            0, 1, 2, 10, 11,
        ]

    def test_budgeted_random_stops_at_budget(self, rng):
        jammer = BudgetedRandomJamming(budget=3, horizon=10)
        decisions = [jammer.jam(view_at(slot), rng) for slot in range(10)]
        assert sum(decisions) == jammer.jams_used() <= 3


class TestScheduleBoundaryInteractions:
    def test_budget_exhausts_before_its_phase_ends(self, rng):
        jamming = ScheduledJamming(
            Phase(BernoulliJamming(1.0, budget=3, only_active=False), 5),
            Phase(BernoulliJamming(1.0, budget=2, only_active=False)),
        )
        decisions = [jamming.jam(view_at(slot), rng) for slot in range(10)]
        # Phase 1: budget 3 dies at slot 3; phase 2 starts fresh with its
        # own budget of 2, then everything is silent.
        assert decisions == [True, True, True, False, False, True, True, False, False, False]
        assert jamming.jams_used() == 5

    def test_budget_exhausts_exactly_at_the_phase_boundary(self, rng):
        jamming = ScheduledJamming(
            Phase(PeriodicJamming(period=1, budget=4), 4),
            Phase(PeriodicJamming(period=1, budget=4), 4),
        )
        decisions = [jamming.jam(view_at(slot), rng) for slot in range(10)]
        assert decisions == [True] * 8 + [False, False]
        assert jamming.jams_used() == 8

    def test_unspent_budget_does_not_carry_across_phases(self, rng):
        jamming = ScheduledJamming(
            Phase(BernoulliJamming(1.0, budget=100, only_active=False), 3),
            Phase(BernoulliJamming(1.0, budget=2, only_active=False)),
        )
        decisions = [jamming.jam(view_at(slot), rng) for slot in range(8)]
        # 97 unspent jams from phase 1 do not leak into phase 2.
        assert decisions == [True, True, True, True, True, False, False, False]
        assert jamming.jams_used() == 5


class TestEngineAccounting:
    def test_realised_jams_match_budget_in_a_full_run(self):
        jammer = BernoulliJamming(1.0, budget=9, only_active=True)
        config = SimulationConfig(
            protocol=BinaryExponentialBackoff(),
            adversary=CompositeAdversary(BatchArrivals(20), jammer),
            seed=3,
            max_slots=100_000,
        )
        result = Simulator(config).run()
        assert result.drained
        assert jammer.jams_used() == 9
        assert result.collector.num_jammed == 9
