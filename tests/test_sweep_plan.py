"""Tests for the declarative sweep layer (factories, RunSpec, SweepPlan)."""

import pickle

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BernoulliJamming
from repro.core.low_sensing import LowSensingBackoff
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.experiments import run_e1_throughput_batch, run_e9_potential_drift
from repro.experiments.plan import RunSpec, SweepPlan, factory
from repro.experiments.runner import SweepRunner
from repro.sim.engine import Simulator


def _batch_adversary(n):
    return factory(CompositeAdversary, factory(BatchArrivals, n))


class TestFactory:
    def test_builds_fresh_instances(self):
        f = _batch_adversary(5)
        first, second = f.build(), f.build()
        assert first is not second
        assert first.arrival_process.n == 5

    def test_nested_factories_and_kwargs(self):
        f = factory(
            CompositeAdversary,
            factory(BatchArrivals, 3),
            factory(BernoulliJamming, probability=0.5, budget=2),
        )
        adversary = f.build()
        assert adversary.arrival_process.n == 3
        assert adversary.jammer.probability == 0.5
        assert adversary.jammer.budget == 2

    def test_picklable(self):
        f = _batch_adversary(4)
        rebuilt = pickle.loads(pickle.dumps(f))
        assert rebuilt.build().arrival_process.n == 4


class TestRunSpec:
    def test_build_config_propagates_fields(self):
        spec = RunSpec(
            protocol=LowSensingBackoff(),
            adversary=_batch_adversary(7),
            seed=42,
            max_slots=1_000,
            collect_potential=True,
        )
        config = spec.build_config()
        assert config.seed == 42
        assert config.max_slots == 1_000
        assert config.collect_potential
        # Fresh adversary per build: budgeted/windowed adversaries are
        # stateful, so sharing one across runs would leak state.
        assert spec.build_config().adversary is not config.adversary

    def test_cache_key_stable_and_discriminating(self):
        spec = RunSpec(LowSensingBackoff(), _batch_adversary(7), seed=1)
        assert spec.cache_key() == spec.cache_key()
        other_seed = RunSpec(LowSensingBackoff(), _batch_adversary(7), seed=2)
        other_n = RunSpec(LowSensingBackoff(), _batch_adversary(8), seed=1)
        keys = {spec.cache_key(), other_seed.cache_key(), other_n.cache_key()}
        assert len(keys) == 3

    def test_cache_key_none_for_plain_callables(self):
        spec = RunSpec(
            LowSensingBackoff(),
            lambda: CompositeAdversary(BatchArrivals(3)),
            seed=1,
        )
        assert spec.cache_key() is None
        # The spec must still be runnable.
        assert spec.build_config().adversary.arrival_process.n == 3


class TestSweepPlan:
    def test_one_spec_per_seed_and_grouping(self):
        plan = SweepPlan()
        gid = plan.add_group(
            LowSensingBackoff(), _batch_adversary(5), [1, 2, 3], columns={"n": 5}
        )
        assert len(plan) == 3
        group = plan.groups[gid]
        assert group.seeds == (1, 2, 3)
        assert [plan.specs[i].seed for i in group.spec_indices] == [1, 2, 3]

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            SweepPlan().add_group(LowSensingBackoff(), _batch_adversary(5), [])

    def test_run_matches_direct_simulation(self):
        plan = SweepPlan()
        plan.add_group(LowSensingBackoff(), _batch_adversary(10), [3])
        result = plan.run().results[0]
        direct = Simulator(plan.specs[0].build_config()).run()
        assert result.summary() == direct.summary()

    def test_group_rows_match_sweep_runner(self):
        """The declarative path must aggregate exactly like SweepRunner."""
        seeds = [1, 2]
        plan = SweepPlan()
        plan.add_group(
            LowSensingBackoff(), _batch_adversary(20), seeds, columns={"n": 20}
        )
        plan_row = plan.run().group_rows()[0]
        runner_row = SweepRunner(seeds).aggregate_row(
            LowSensingBackoff(),
            lambda: CompositeAdversary(BatchArrivals(20)),
            extra_columns={"n": 20},
        )
        assert plan_row == runner_row


class TestVectorSupportMemoisation:
    def test_identical_configs_probe_once_across_seeds_and_plans(self):
        from repro.experiments.plan import (
            _cached_vector_support_by_signature,
            cached_vector_support,
        )

        _cached_vector_support_by_signature.cache_clear()
        adversary = _batch_adversary(9)
        specs = [
            RunSpec(protocol=LowSensingBackoff(), adversary=adversary, seed=seed)
            for seed in range(40)
        ]
        for spec in specs:
            assert cached_vector_support(spec) is None
        info = _cached_vector_support_by_signature.cache_info()
        # The seed is normalised out of the memo key: one probe, 39 hits.
        assert info.misses == 1
        assert info.hits == 39

    def test_vector_summary_uses_the_memo(self):
        from repro.experiments.plan import _cached_vector_support_by_signature

        _cached_vector_support_by_signature.cache_clear()
        plan = SweepPlan()
        for _ in range(3):  # identical configuration added as three groups
            plan.add_group(LowSensingBackoff(), _batch_adversary(9), [1, 2, 3])
        plan.vector_summary()
        plan.vector_summary()
        assert _cached_vector_support_by_signature.cache_info().misses == 1


class TestBackendEquivalence:
    """The same plan must produce bit-identical summaries on every backend."""

    def _plan(self):
        plan = SweepPlan()
        plan.add_group(
            LowSensingBackoff(), _batch_adversary(15), [1, 2], columns={"n": 15}
        )
        plan.add_group(
            LowSensingBackoff(), _batch_adversary(30), [1, 2], columns={"n": 30}
        )
        return plan

    def test_serial_vs_processes(self):
        serial = self._plan().run(SerialBackend())
        parallel = self._plan().run(ProcessPoolBackend(workers=2))
        assert [r.summary() for r in parallel.results] == [
            r.summary() for r in serial.results
        ]
        assert parallel.group_rows() == serial.group_rows()

    def test_experiment_rows_identical_across_backends(self):
        serial_report = run_e1_throughput_batch(scale="smoke")
        parallel_report = run_e1_throughput_batch(
            scale="smoke", backend=ProcessPoolBackend(workers=2)
        )
        assert parallel_report.rows == serial_report.rows
        assert parallel_report.verdicts == serial_report.verdicts

    def test_potential_experiment_survives_processes(self):
        # E9 ships PotentialTracker objects across the process boundary.
        report = run_e9_potential_drift(
            scale="smoke", backend=ProcessPoolBackend(workers=2)
        )
        assert report.rows
