"""Tests for the resumable campaign subsystem (`repro.campaigns`)."""

from __future__ import annotations

import json

import pytest

from repro.campaigns import (
    CampaignError,
    CampaignInterrupted,
    campaign_report,
    campaign_status_rows,
    diff_campaign_vs_bench,
    diff_campaigns,
    resume_campaign,
    start_campaign,
)
from repro.campaigns.runner import _partition_units
from repro.experiments.bench import record_bench
from repro.scenarios.runner import build_plan
from repro.scenarios.spec import scenario_from_dict
from repro.store import ResultsStore

#: A fast mixed-protocol scenario.  Every protocol here vectorizes (the
#: sensing tier included, since the sensing-vector kernels), so a vector
#: campaign cuts one lockstep unit per protocol group while a serial
#: campaign cuts per-run scalar units; SCALAR_FALLBACK below covers the
#: scalar-unit path *under* the vector backend (replayed arrival traces
#: have no vector schedule, so every group stays on the scalar engine).
MIXED = {
    "id": "campaign-mixed",
    "title": "Campaign test scenario",
    "protocols": ["binary-exponential", "low-sensing", "sawtooth"],
    "max_slots": 1500,
    "replications": 3,
    "arrivals": {"kind": "batch", "n": 12},
}

SCALAR_FALLBACK = {
    "id": "campaign-replayed",
    "title": "Replayed-trace campaign scenario (serial fallback on vector backend)",
    "protocols": ["binary-exponential", "low-sensing"],
    "max_slots": 1500,
    "replications": 3,
    "arrivals": {"kind": "trace", "counts": [12, 0, 0, 0]},
}

VECTOR_ONLY = {
    "id": "campaign-vec",
    "title": "Vector-only campaign scenario",
    "protocols": ["binary-exponential", "polynomial"],
    "max_slots": 1500,
    "replications": 3,
    "arrivals": {"kind": "batch", "n": 12},
}


def _scenario(definition=MIXED):
    return scenario_from_dict(definition)


def _unit_count(definition, backend_name, checkpoint_every=2):
    scenario = _scenario(definition)
    plan = build_plan(scenario, "smoke")
    units, _ = _partition_units(plan, backend_name, checkpoint_every)
    return len(units)


class TestRunAndResume:
    def test_complete_campaign_records_everything(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            outcome = start_campaign(
                store, _scenario(), scale="smoke", backend_name="serial"
            )
            assert outcome.status == "complete"
            assert outcome.total_runs == 6  # 3 protocols x 2 smoke seeds
            assert outcome.executed_runs == 6 and outcome.skipped_runs == 0
            rows = campaign_status_rows(store)
            assert len(rows) == 1
            assert rows[0]["status"] == "complete"
            assert rows[0]["runs_done"] == rows[0]["total_runs"] == 6
            assert store.stats()["runs_by_source"] == {"campaign": 6}

    def test_rerun_same_id_rejected_but_resume_is_noop(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            outcome = start_campaign(
                store, _scenario(), scale="smoke", backend_name="serial"
            )
            with pytest.raises(CampaignError, match="already exists"):
                start_campaign(
                    store, _scenario(), scale="smoke", backend_name="serial"
                )
            again = resume_campaign(store, outcome.campaign_id)
            assert again.status == "complete"
            assert again.executed_runs == 0
            assert again.skipped_runs == outcome.total_runs

    def test_unknown_backend_rejected(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            with pytest.raises(CampaignError, match="unknown campaign backend"):
                start_campaign(store, _scenario(), backend_name="threads")

    def test_invalid_workers_rejected_before_campaign_creation(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            with pytest.raises(CampaignError, match="workers must be positive"):
                start_campaign(
                    store,
                    _scenario(),
                    scale="smoke",
                    backend_name="processes",
                    workers=-2,
                )
            # No stranded 'running' campaign row was left behind.
            assert store.list_campaigns() == []

    def test_resume_unknown_campaign_rejected(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            with pytest.raises(CampaignError, match="unknown campaign"):
                resume_campaign(store, "nope")

    def test_resume_refuses_drifted_definition(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            with pytest.raises(CampaignInterrupted):
                start_campaign(
                    store,
                    _scenario(),
                    scale="smoke",
                    backend_name="serial",
                    campaign_id="drift",
                    checkpoint_every=2,
                    fail_after_units=1,
                )
            tampered = dict(MIXED, max_slots=999)
            with store._connection:
                store._connection.execute(
                    "UPDATE campaigns SET definition = ? WHERE campaign_id = 'drift'",
                    (json.dumps(tampered, sort_keys=True),),
                )
            with pytest.raises(CampaignError, match="content hash"):
                resume_campaign(store, "drift")

    @pytest.mark.parametrize("backend_name", ["serial", "vector"])
    def test_interrupt_anywhere_then_resume_is_bit_identical(
        self, tmp_path, backend_name
    ):
        """The acceptance criterion: kill after *every* possible unit
        commit, resume, and the store must fingerprint identically to an
        uninterrupted run on both the serial and vector backends."""
        units = _unit_count(MIXED, backend_name, checkpoint_every=1)
        assert units >= 3
        with ResultsStore(tmp_path / "reference") as reference:
            start_campaign(
                reference,
                _scenario(),
                scale="smoke",
                backend_name=backend_name,
                campaign_id="c",
                checkpoint_every=1,
            )
            expected = reference.fingerprint()
            expected_artifacts = sorted(
                path.name for path in reference.artifacts_dir.rglob("*.pkl")
            )
        for fail_after in range(1, units):
            root = tmp_path / f"interrupted-{backend_name}-{fail_after}"
            with ResultsStore(root) as store:
                with pytest.raises(CampaignInterrupted):
                    start_campaign(
                        store,
                        _scenario(),
                        scale="smoke",
                        backend_name=backend_name,
                        campaign_id="c",
                        checkpoint_every=1,
                        fail_after_units=fail_after,
                    )
                assert store.get_campaign("c")["status"] == "running"
                outcome = resume_campaign(store, "c", checkpoint_every=1)
                assert outcome.status == "complete"
                assert outcome.skipped_runs > 0
                assert store.fingerprint() == expected, (
                    f"{backend_name} store diverged when killed after "
                    f"unit {fail_after}"
                )
                artifacts = sorted(
                    path.name for path in store.artifacts_dir.rglob("*.pkl")
                )
                assert artifacts == expected_artifacts

    def test_vector_campaign_stores_batch_layouts(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            start_campaign(
                store,
                _scenario(VECTOR_ONLY),
                scale="smoke",
                backend_name="vector",
                campaign_id="v",
            )
            layouts = set(store.stats()["runs_by_layout"])
            assert all(layout.startswith("vector:") for layout in layouts)
            assert len(layouts) == 2  # one batch signature per protocol group

    def test_processes_campaign_fingerprints_like_serial(self, tmp_path):
        """Pool-returned results pickle through an extra round trip, which
        reshuffles pickle's identity memo; artifact hashing must be a
        function of result content, not of which backend produced it."""
        with ResultsStore(tmp_path / "a") as a, ResultsStore(tmp_path / "b") as b:
            start_campaign(
                a,
                _scenario(),
                scale="smoke",
                backend_name="processes",
                workers=2,
                campaign_id="c",
            )
            start_campaign(
                b, _scenario(), scale="smoke", backend_name="serial", campaign_id="c"
            )
            assert a.fingerprint() == b.fingerprint()

    def test_scalar_and_vector_results_never_collide(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            start_campaign(
                store,
                _scenario(VECTOR_ONLY),
                scale="smoke",
                backend_name="serial",
                campaign_id="s",
            )
            start_campaign(
                store,
                _scenario(VECTOR_ONLY),
                scale="smoke",
                backend_name="vector",
                campaign_id="v",
            )
            by_layout = store.stats()["runs_by_layout"]
            assert by_layout["scalar"] == 4
            assert sum(v for k, v in by_layout.items() if k.startswith("vector:")) == 4

    def test_vector_campaign_with_reactive_scenario_cuts_scalar_units(self, tmp_path):
        """A reactive adversary keeps every group on the scalar engine, so a
        vector-backend campaign stores scalar-layout runs — and they are
        interchangeable with a serial campaign's (same fingerprint)."""
        with ResultsStore(tmp_path / "vector") as a, ResultsStore(
            tmp_path / "serial"
        ) as b:
            start_campaign(
                a,
                _scenario(SCALAR_FALLBACK),
                scale="smoke",
                backend_name="vector",
                campaign_id="c",
            )
            start_campaign(
                b,
                _scenario(SCALAR_FALLBACK),
                scale="smoke",
                backend_name="serial",
                campaign_id="c",
            )
            assert set(a.stats()["runs_by_layout"]) == {"scalar"}
            assert a.fingerprint() == b.fingerprint()


class TestReportAndStatus:
    def test_campaign_report_aggregates_from_registry(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            outcome = start_campaign(
                store, _scenario(), scale="smoke", backend_name="serial"
            )
            report = campaign_report(store, outcome.campaign_id)
            assert len(report.rows) == 3
            protocols = {row["protocol"] for row in report.rows}
            assert protocols == {"binary-exponential", "low-sensing", "sawtooth"}
            for row in report.rows:
                assert row["replicates"] == 2
                assert row["scenario"] == "campaign-mixed"
                assert 0.0 <= row["throughput"] <= 1.0
                assert row["drained"] in (True, False)
            assert report.verdicts

    def test_report_unknown_campaign_rejected(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            with pytest.raises(CampaignError, match="unknown campaign"):
                campaign_report(store, "nope")

    def test_report_warns_when_registry_rows_are_missing(self, tmp_path):
        with ResultsStore(tmp_path / "store") as store:
            outcome = start_campaign(
                store, _scenario(), scale="smoke", backend_name="serial"
            )
            with store._connection:
                store._connection.execute(
                    "DELETE FROM runs WHERE rowid = "
                    "(SELECT rowid FROM runs ORDER BY rowid LIMIT 1)"
                )
            report = campaign_report(store, outcome.campaign_id)
            assert any("no registry row" in note for note in report.notes)


class TestDiff:
    def _campaign(self, store, definition, campaign_id, seeds=None):
        return start_campaign(
            store,
            _scenario(definition),
            scale="smoke",
            seeds=seeds,
            backend_name="serial",
            campaign_id=campaign_id,
        )

    def test_equivalent_campaigns_pass(self, tmp_path):
        definition = dict(VECTOR_ONLY, replications=4, max_slots=4000)
        with ResultsStore(tmp_path / "store") as store:
            self._campaign(store, definition, "a", seeds=[1, 2, 3, 4])
            self._campaign(store, definition, "b", seeds=[11, 12, 13, 14])
            diff = diff_campaigns(store, "a", right_id="b")
            assert diff.passed, diff.render()
            assert set(diff.reports) == {"binary-exponential", "polynomial"}

    def test_injected_regression_flagged(self, tmp_path):
        base = dict(VECTOR_ONLY, replications=4, max_slots=4000)
        regressed = dict(base, jamming={"kind": "bernoulli", "probability": 0.5})
        with ResultsStore(tmp_path / "store") as store:
            self._campaign(store, base, "base")
            self._campaign(store, regressed, "regressed")
            diff = diff_campaigns(store, "base", right_id="regressed")
            assert not diff.passed
            failures = [
                comparison.metric
                for report in diff.reports.values()
                for comparison in report.failures()
            ]
            assert failures, diff.render()
            assert any(note.startswith("scenario definitions differ") for note in diff.notes)

    def test_missing_protocol_is_a_regression(self, tmp_path):
        narrow = dict(VECTOR_ONLY, protocols=["binary-exponential"])
        with ResultsStore(tmp_path / "store") as store:
            self._campaign(store, VECTOR_ONLY, "wide")
            self._campaign(store, narrow, "narrow")
            diff = diff_campaigns(store, "wide", right_id="narrow")
            assert not diff.passed
            assert any("only in 'wide'" in item or "only in wide" in item for item in diff.missing)

    def test_diff_across_two_stores(self, tmp_path):
        with ResultsStore(tmp_path / "a") as left, ResultsStore(tmp_path / "b") as right:
            self._campaign(left, VECTOR_ONLY, "c")
            self._campaign(right, VECTOR_ONLY, "c")
            diff = diff_campaigns(left, "c", right, "c")
            assert diff.passed

    def test_bench_diff_pass_and_regression(self, tmp_path):
        bench_path = tmp_path / "BENCH_campaigns.json"
        with ResultsStore(tmp_path / "store") as store:
            outcome = self._campaign(store, VECTOR_ONLY, "timed")
            record_bench(
                bench_path,
                "campaign:campaign-vec",
                seconds=max(outcome.elapsed_seconds, 0.01) * 2,
                scale="smoke",
            )
            verdict = diff_campaign_vs_bench(store, "timed", bench_path)
            assert verdict["passed"], verdict
            record_bench(
                bench_path,
                "campaign:campaign-vec",
                seconds=outcome.elapsed_seconds / 100 + 1e-6,
                scale="smoke",
            )
            verdict = diff_campaign_vs_bench(store, "timed", bench_path, factor=1.0)
            assert not verdict["passed"]

    def test_incomplete_campaign_flagged_by_diff_and_bench_gate(self, tmp_path):
        bench_path = tmp_path / "BENCH.json"
        record_bench(bench_path, "campaign:campaign-vec", seconds=100.0, scale="smoke")
        with ResultsStore(tmp_path / "store") as store:
            self._campaign(store, VECTOR_ONLY, "done")
            with pytest.raises(CampaignInterrupted):
                start_campaign(
                    store,
                    _scenario(VECTOR_ONLY),
                    scale="smoke",
                    seeds=[51, 52],
                    backend_name="serial",
                    campaign_id="partial",
                    checkpoint_every=1,
                    fail_after_units=1,
                )
            diff = diff_campaigns(store, "done", right_id="partial")
            assert not diff.passed
            assert any("incomplete" in item for item in diff.missing)
            with pytest.raises(CampaignError, match="resume it first"):
                diff_campaign_vs_bench(store, "partial", bench_path)

    def test_bench_diff_unknown_entry_rejected(self, tmp_path):
        bench_path = tmp_path / "BENCH.json"
        bench_path.write_text("{}", encoding="utf-8")
        with ResultsStore(tmp_path / "store") as store:
            self._campaign(store, VECTOR_ONLY, "c")
            with pytest.raises(CampaignError, match="no usable entry"):
                diff_campaign_vs_bench(store, "c", bench_path)


class TestCacheStoreInterop:
    def test_cache_hits_reuse_campaign_scalar_runs(self, tmp_path):
        """The cache and campaigns share one persistence layer: a scalar
        run recorded by a campaign is a cache hit for the same spec."""
        from repro.exec.cache import ResultCacheBackend

        with ResultsStore(tmp_path / "store") as store:
            start_campaign(
                store,
                _scenario(VECTOR_ONLY),
                scale="smoke",
                backend_name="serial",
                campaign_id="c",
            )
        cache = ResultCacheBackend(tmp_path / "store")
        plan = build_plan(_scenario(VECTOR_ONLY), "smoke")
        cache.run(plan.specs)
        assert cache.hits == len(plan.specs)
        assert cache.misses == 0
