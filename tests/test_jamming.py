"""Tests for jamming strategies."""

from random import Random

import pytest

from repro.adversary.base import SystemView
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)


def view(slot: int = 0, active: int = 1, contention: float = 1.0) -> SystemView:
    return SystemView(
        slot=slot,
        active_packets=tuple(range(active)),
        contention=contention,
    )


class TestNoJamming:
    def test_never_jams(self):
        jammer = NoJamming()
        rng = Random(0)
        assert not any(jammer.jam(view(slot), rng) for slot in range(100))
        assert jammer.jams_used() == 0


class TestBernoulliJamming:
    def test_jam_frequency_matches_probability(self):
        jammer = BernoulliJamming(probability=0.25)
        rng = Random(1)
        jams = sum(1 for slot in range(20_000) if jammer.jam(view(slot), rng))
        assert jams == pytest.approx(5000, rel=0.1)
        assert jammer.jams_used() == jams

    def test_budget_is_respected(self):
        jammer = BernoulliJamming(probability=1.0, budget=5)
        rng = Random(2)
        jams = sum(1 for slot in range(100) if jammer.jam(view(slot), rng))
        assert jams == 5

    def test_inactive_slots_spared_by_default(self):
        jammer = BernoulliJamming(probability=1.0)
        assert not jammer.jam(view(active=0), Random(0))

    def test_only_active_false_jams_inactive(self):
        jammer = BernoulliJamming(probability=1.0, only_active=False)
        assert jammer.jam(view(active=0), Random(0))

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliJamming(probability=1.5)
        with pytest.raises(ValueError):
            BernoulliJamming(probability=0.5, budget=-1)


class TestPeriodicJamming:
    def test_period_pattern(self):
        jammer = PeriodicJamming(period=5, offset=2)
        rng = Random(0)
        jammed = [slot for slot in range(20) if jammer.jam(view(slot), rng)]
        assert jammed == [2, 7, 12, 17]

    def test_budget(self):
        jammer = PeriodicJamming(period=1, budget=3)
        rng = Random(0)
        jams = sum(1 for slot in range(10) if jammer.jam(view(slot), rng))
        assert jams == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicJamming(period=0)


class TestBurstJamming:
    def test_single_burst(self):
        jammer = BurstJamming(start=3, length=4)
        rng = Random(0)
        jammed = [slot for slot in range(12) if jammer.jam(view(slot), rng)]
        assert jammed == [3, 4, 5, 6]

    def test_repeating_burst(self):
        jammer = BurstJamming(start=0, length=2, period=5)
        rng = Random(0)
        jammed = [slot for slot in range(12) if jammer.jam(view(slot), rng)]
        assert jammed == [0, 1, 5, 6, 10, 11]

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstJamming(start=0, length=10, period=5)


class TestBudgetedRandomJamming:
    def test_spends_roughly_the_budget(self):
        jammer = BudgetedRandomJamming(budget=100, horizon=1000)
        rng = Random(4)
        jams = sum(1 for slot in range(1000) if jammer.jam(view(slot), rng))
        assert 50 <= jams <= 100
        assert jammer.jams_used() == jams

    def test_never_exceeds_budget(self):
        jammer = BudgetedRandomJamming(budget=10, horizon=20)
        rng = Random(5)
        jams = sum(1 for slot in range(20) if jammer.jam(view(slot), rng))
        assert jams <= 10

    def test_no_jamming_after_horizon(self):
        jammer = BudgetedRandomJamming(budget=10, horizon=10)
        assert not jammer.jam(view(15), Random(0))


class TestAdaptiveContentionJammer:
    def test_targets_good_contention_only(self):
        jammer = AdaptiveContentionJammer(budget=None, target_regime="good")
        rng = Random(0)
        assert jammer.jam(view(contention=1.0), rng)
        assert not jammer.jam(view(contention=0.001), rng)
        assert not jammer.jam(view(contention=100.0), rng)

    def test_targets_low_contention(self):
        jammer = AdaptiveContentionJammer(budget=None, target_regime="low")
        rng = Random(0)
        assert jammer.jam(view(contention=0.001), rng)
        assert not jammer.jam(view(contention=1.0), rng)

    def test_any_regime_with_budget(self):
        jammer = AdaptiveContentionJammer(budget=2, target_regime="any")
        rng = Random(0)
        jams = sum(1 for _ in range(10) if jammer.jam(view(), rng))
        assert jams == 2

    def test_never_jams_empty_system(self):
        jammer = AdaptiveContentionJammer(budget=None, target_regime="any")
        assert not jammer.jam(view(active=0), Random(0))

    def test_declares_contention_dependency(self):
        assert AdaptiveContentionJammer(budget=1).needs_contention

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveContentionJammer(budget=1, target_regime="bogus")


class TestReactiveTargetedJammer:
    def test_jams_only_when_target_sends(self):
        jammer = ReactiveTargetedJammer(budget=None, target_index=0)
        rng = Random(0)
        assert jammer.reactive
        assert not jammer.jam(view(), rng)
        assert jammer.reactive_jam(view(active=3), senders=(0, 2), rng=rng)
        assert not jammer.reactive_jam(view(active=3), senders=(1, 2), rng=rng)

    def test_budget_limits_persecution(self):
        jammer = ReactiveTargetedJammer(budget=2, target_index=0)
        rng = Random(0)
        jams = sum(
            1 for _ in range(10) if jammer.reactive_jam(view(active=1), (0,), rng)
        )
        assert jams == 2

    def test_no_jam_before_target_exists(self):
        jammer = ReactiveTargetedJammer(budget=None, target_index=5)
        assert not jammer.reactive_jam(view(active=2), senders=(0,), rng=Random(0))


class TestReactiveSuccessJammer:
    def test_jams_would_be_successes_only(self):
        jammer = ReactiveSuccessJammer(budget=None)
        rng = Random(0)
        assert jammer.reactive_jam(view(), senders=(3,), rng=rng)
        assert not jammer.reactive_jam(view(), senders=(), rng=rng)
        assert not jammer.reactive_jam(view(), senders=(1, 2), rng=rng)

    def test_budget(self):
        jammer = ReactiveSuccessJammer(budget=1)
        rng = Random(0)
        assert jammer.reactive_jam(view(), senders=(1,), rng=rng)
        assert not jammer.reactive_jam(view(), senders=(2,), rng=rng)
