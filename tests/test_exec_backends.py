"""Tests for the execution-backend layer (serial, processes, cache)."""

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.core.low_sensing import LowSensingBackoff
from repro.exec import make_backend
from repro.exec.backends import (
    ConfigJob,
    ProcessPoolBackend,
    SerialBackend,
    execute_job,
)
from repro.exec.cache import ResultCacheBackend
from repro.experiments.plan import RunSpec, factory
from repro.sim.config import SimulationConfig


def _specs(n=20, seeds=(1, 2, 3)):
    return [
        RunSpec(
            protocol=LowSensingBackoff(),
            adversary=factory(CompositeAdversary, factory(BatchArrivals, n)),
            seed=seed,
            max_slots=50_000,
        )
        for seed in seeds
    ]


def _summaries(results):
    return [result.summary() for result in results]


class TestSerialBackend:
    def test_runs_config_jobs_in_order(self):
        jobs = [
            ConfigJob(
                SimulationConfig(
                    protocol=LowSensingBackoff(),
                    adversary=CompositeAdversary(BatchArrivals(10)),
                    seed=seed,
                )
            )
            for seed in (5, 6)
        ]
        results = SerialBackend().run(jobs)
        assert [result.seed for result in results] == [5, 6]
        assert all(result.drained for result in results)

    def test_matches_direct_execution(self):
        spec = _specs(seeds=(7,))[0]
        assert SerialBackend().run([spec])[0].summary() == execute_job(spec).summary()


class TestProcessPoolBackend:
    def test_identical_to_serial(self):
        specs = _specs()
        serial = SerialBackend().run(specs)
        parallel = ProcessPoolBackend(workers=2).run(specs)
        assert _summaries(parallel) == _summaries(serial)

    def test_single_job_still_goes_through_pool(self):
        specs = _specs(seeds=(3,))
        results = ProcessPoolBackend(workers=4).run(specs)
        assert results[0].seed == 3

    def test_empty_job_list(self):
        assert ProcessPoolBackend(workers=2).run([]) == []

    def test_rejects_unpicklable_jobs(self):
        class ClosureJob:
            def __init__(self):
                self.build = lambda: None  # lambdas cannot be pickled

            def build_config(self):  # pragma: no cover - never reached
                raise AssertionError

        with pytest.raises(TypeError, match="picklable"):
            ProcessPoolBackend(workers=2).run([ClosureJob(), ClosureJob()])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunksize=0)


class TestResultCacheBackend:
    def test_miss_then_hit_identical(self, tmp_path):
        specs = _specs()
        cache = ResultCacheBackend(tmp_path / "cache", inner=SerialBackend())
        first = cache.run(specs)
        assert (cache.hits, cache.misses) == (0, len(specs))
        second = cache.run(specs)
        assert (cache.hits, cache.misses) == (len(specs), len(specs))
        assert _summaries(second) == _summaries(first)
        assert _summaries(first) == _summaries(SerialBackend().run(specs))

    def test_different_specs_do_not_collide(self, tmp_path):
        cache = ResultCacheBackend(tmp_path / "cache")
        small = cache.run(_specs(n=10, seeds=(1,)))[0]
        large = cache.run(_specs(n=40, seeds=(1,)))[0]
        assert small.num_arrivals == 10
        assert large.num_arrivals == 40

    def test_jobs_without_cache_key_always_delegate(self, tmp_path):
        job = ConfigJob(
            SimulationConfig(
                protocol=LowSensingBackoff(),
                adversary=CompositeAdversary(BatchArrivals(10)),
                seed=1,
            )
        )
        cache = ResultCacheBackend(tmp_path / "cache")
        cache.run([job])
        # A ConfigJob's adversary is stateful, so re-running it requires a
        # freshly built job; the cache must not have stored the first result.
        assert cache.misses == 1 and cache.hits == 0
        assert cache.store.stats()["runs"] == 0

    def test_entries_live_in_the_results_store(self, tmp_path):
        specs = _specs(seeds=(9,))
        cache = ResultCacheBackend(tmp_path / "cache")
        cache.run(specs)
        stored = cache.store.get_run(specs[0].cache_key(), 9, "scalar")
        assert stored is not None and stored.source == "cache"
        assert stored.metrics["throughput"] > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        specs = _specs(seeds=(9,))
        cache = ResultCacheBackend(tmp_path / "cache")
        first = cache.run(specs)[0]
        for artifact in (tmp_path / "cache" / "artifacts").rglob("*.pkl"):
            artifact.write_bytes(b"not a pickle")
        again = cache.run(specs)[0]
        assert again.summary() == first.summary()

    def test_corrupt_entry_recovery(self, tmp_path):
        """A corrupted entry is counted as a miss, re-run, and overwritten
        with a valid entry that the next run hits."""
        specs = _specs(seeds=(9,))
        cache = ResultCacheBackend(tmp_path / "cache")
        first = cache.run(specs)[0]
        for artifact in (tmp_path / "cache" / "artifacts").rglob("*.pkl"):
            artifact.write_bytes(b"\x80\x04garbage")
        recovered = cache.run(specs)[0]
        assert (cache.hits, cache.misses) == (0, 2)
        assert recovered.summary() == first.summary()
        # The entry was rewritten: the third run is a clean hit.
        third = cache.run(specs)[0]
        assert (cache.hits, cache.misses) == (1, 2)
        assert third.summary() == first.summary()

    def test_legacy_flat_pickle_entries_are_migrated(self, tmp_path):
        """Loose ``<spec_hash>.pkl`` files from the pre-store cache become
        store rows (and cache hits) instead of dead disk."""
        import pickle

        specs = _specs(seeds=(9,))
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        result = SerialBackend().run(specs)[0]
        legacy = cache_dir / f"{specs[0].cache_key()}.pkl"
        legacy.write_bytes(pickle.dumps(result))
        (cache_dir / "not-a-hash.pkl").write_bytes(b"ignored")
        cache = ResultCacheBackend(cache_dir)
        migrated = cache.run(specs)[0]
        assert (cache.hits, cache.misses) == (1, 0)
        assert migrated.summary() == result.summary()
        assert not legacy.exists()
        assert (cache_dir / "not-a-hash.pkl").exists()  # unknown files kept

    def test_describe_reports_hit_and_miss_counts(self, tmp_path):
        specs = _specs(seeds=(1, 2))
        cache = ResultCacheBackend(tmp_path / "cache")
        cache.run(specs)
        cache.run(specs)
        description = cache.describe()
        assert description["hits"] == 2
        assert description["misses"] == 2
        assert description["inner"] == {"backend": "serial"}

    def test_close_releases_the_store_and_reopens_on_demand(self, tmp_path):
        specs = _specs(seeds=(1,))
        with ResultCacheBackend(tmp_path / "cache") as cache:
            cache.run(specs)
            assert cache._store is not None
        assert cache._store is None  # __exit__ closed the connection
        # The backend stays usable: the store reopens lazily.
        cache.run(specs)
        assert cache.hits == 1
        cache.close()


class TestMakeBackend:
    def test_names(self):
        assert SerialBackend.name == make_backend("serial").name
        backend = make_backend("processes", workers=3)
        assert backend.name == "processes" and backend.workers == 3

    def test_cache_wrapping(self, tmp_path):
        backend = make_backend("serial", cache_dir=tmp_path / "cache")
        assert isinstance(backend, ResultCacheBackend)
        assert isinstance(backend.inner, SerialBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_backend("threads")
