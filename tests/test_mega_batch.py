"""Tests for cross-config mega-batching.

The headline contract: stacking compatible replication groups into one
ragged lockstep batch (``VectorSimulator.from_spec_groups``, used by
``VectorBackend(mega_batch=True)``) is a pure wall-clock optimisation —
results are **bit-identical** to running each group through its own
per-group batch.  That identity is what keeps the campaign store's
``vector:<batch_signature>`` storage identities stable: a mega-batched
sweep produces byte-for-byte the artifacts a per-group campaign run
produces.
"""

from __future__ import annotations

import pytest

from repro.adversary.arrivals import BatchArrivals, PoissonArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BernoulliJamming, NoJamming, PeriodicJamming
from repro.core.low_sensing import LowSensingBackoff
from repro.core.parameters import LowSensingParameters
from repro.exec import SerialBackend, VectorBackend
from repro.experiments.plan import RunSpec, SweepPlan, batch_signature, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.sim.vector import VectorSimulator


def batch_adversary(n, jammer=None):
    parts = [factory(BatchArrivals, n)]
    if jammer is not None:
        parts.append(jammer)
    return factory(CompositeAdversary, *parts)


def group(protocol, adversary, seeds, **kwargs):
    return [
        RunSpec(protocol=protocol, adversary=adversary, seed=seed, **kwargs)
        for seed in seeds
    ]


def identical(a, b):
    return (
        a.collector.backlog_series == b.collector.backlog_series
        and a.collector.total_listens == b.collector.total_listens
        and a.num_slots == b.num_slots
        and a.drained == b.drained
        and [(p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens) for p in a.packets]
        == [(p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens) for p in b.packets]
    )


def assert_mega_matches_per_group(spec_groups):
    simulator = VectorSimulator.from_spec_groups(spec_groups)
    assert simulator.num_groups == len(spec_groups)
    mega = simulator.run()
    flat = iter(mega)
    for specs in spec_groups:
        solo = VectorSimulator.from_specs(specs).run()
        for expected in solo:
            got = next(flat)
            assert identical(got, expected)


class TestBitIdentityWithPerGroupExecution:
    def test_send_only_protocol_param_grid(self):
        spec_groups = [
            group(BinaryExponentialBackoff(initial_window=2.0 + i), batch_adversary(20 + 3 * i), [1, 2, 3])
            for i in range(6)
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_sensing_protocol_param_grid(self):
        spec_groups = [
            group(
                LowSensingBackoff(params=LowSensingParameters(c=c, w_min=w_min)),
                batch_adversary(n),
                [1, 2],
            )
            for c, w_min, n in [(0.5, 32.0, 20), (1.0, 100.0, 25), (1.4, 256.0, 30)]
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_jammer_params_promoted_per_row(self):
        spec_groups = [
            group(
                PolynomialBackoff(),
                batch_adversary(15, factory(PeriodicJamming, period=p, budget=b)),
                [5, 6],
                max_slots=4_000,
            )
            for p, b in [(3, 10), (5, 20), (11, None)]
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_random_adversaries_keep_their_streams(self):
        # Poisson arrivals + Bernoulli jamming both consume per-replication
        # adversary randomness; stacking must not shift any stream.
        spec_groups = [
            group(
                BinaryExponentialBackoff(),
                factory(
                    CompositeAdversary,
                    factory(PoissonArrivals, rate=rate, horizon=700),
                    factory(BernoulliJamming, probability=jam, budget=9),
                ),
                [7, 8],
                max_slots=5_000,
            )
            for rate, jam in [(0.02, 0.02), (0.05, 0.05), (0.08, 0.01)]
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_ragged_drain_times(self):
        # Wildly different batch sizes: early groups drain long before the
        # last one, so their rows must stop exactly where a solo run stops.
        spec_groups = [
            group(BinaryExponentialBackoff(), batch_adversary(n), [1, 2])
            for n in (2, 10, 80)
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_identical_schedules_stack(self):
        # Same piecewise jamming schedule across groups (differing protocol
        # parameters): stacks, and every phase kernel keeps its streams.
        from repro.adversary.scheduled import ScheduledJamming
        from repro.scenarios.schedule import Phase

        def scheduled_jammer():
            return factory(
                ScheduledJamming,
                factory(
                    Phase, factory(BernoulliJamming, 0.2, budget=10), duration=40
                ),
                factory(Phase, factory(NoJamming), duration=40),
                factory(Phase, factory(BernoulliJamming, 0.05, budget=5)),
            )

        spec_groups = [
            group(
                LowSensingBackoff(params=LowSensingParameters(w_min=w_min)),
                factory(
                    CompositeAdversary, factory(BatchArrivals, 15), scheduled_jammer()
                ),
                [1, 2],
                max_slots=6_000,
            )
            for w_min in (32.0, 64.0)
        ]
        assert_mega_matches_per_group(spec_groups)

    def test_differing_schedules_refuse_to_stack(self):
        from repro.adversary.scheduled import ScheduledJamming
        from repro.scenarios.schedule import Phase

        def jammer(probability):
            return factory(
                ScheduledJamming,
                factory(Phase, factory(BernoulliJamming, probability)),
            )

        spec_groups = [
            group(
                LowSensingBackoff(),
                factory(CompositeAdversary, factory(BatchArrivals, 10), jammer(p)),
                [1],
            )
            for p in (0.1, 0.2)
        ]
        with pytest.raises(ValueError, match="schedule"):
            VectorSimulator.from_spec_groups(spec_groups)
        # The backend never attempts it: distinct schedules split launches.
        plan = SweepPlan()
        for specs in spec_groups:
            plan.add_group(specs[0].protocol, specs[0].adversary, [1])
        backend = VectorBackend()
        plan.run(backend)
        assert backend.mega_batches == 2

    def test_capacity_growth_stays_per_group(self):
        # One group's Poisson overflow grows *its* capacity (and coin
        # geometry); the small group alongside must be unaffected.
        spec_groups = [
            group(
                BinaryExponentialBackoff(),
                factory(CompositeAdversary, factory(PoissonArrivals, rate=0.2, horizon=900)),
                [1, 2],
                max_slots=8_000,
            ),
            group(
                BinaryExponentialBackoff(initial_window=4.0),
                factory(CompositeAdversary, factory(PoissonArrivals, rate=0.01, horizon=900)),
                [3, 4],
                max_slots=8_000,
            ),
        ]
        assert_mega_matches_per_group(spec_groups)


class TestFromSpecGroupsValidation:
    def test_rejects_mixed_protocol_families(self):
        with pytest.raises(ValueError, match="protocol class"):
            VectorSimulator.from_spec_groups(
                [
                    group(BinaryExponentialBackoff(), batch_adversary(5), [1]),
                    group(PolynomialBackoff(), batch_adversary(5), [1]),
                ]
            )

    def test_rejects_mixed_jammer_families(self):
        with pytest.raises(ValueError, match="jammer class"):
            VectorSimulator.from_spec_groups(
                [
                    group(BinaryExponentialBackoff(), batch_adversary(5), [1]),
                    group(
                        BinaryExponentialBackoff(),
                        batch_adversary(5, factory(PeriodicJamming, period=3)),
                        [1],
                    ),
                ]
            )

    def test_rejects_mixed_engine_options(self):
        with pytest.raises(ValueError, match="max_slots"):
            VectorSimulator.from_spec_groups(
                [
                    group(BinaryExponentialBackoff(), batch_adversary(5), [1], max_slots=1_000),
                    group(BinaryExponentialBackoff(), batch_adversary(5), [1], max_slots=2_000),
                ]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="spec group"):
            VectorSimulator.from_spec_groups([])


class TestBackendMegaBatching:
    def test_compatible_groups_collapse_to_one_launch(self):
        plan = SweepPlan()
        for i in range(8):
            plan.add_group(
                BinaryExponentialBackoff(initial_window=2.0 + i),
                batch_adversary(10 + i),
                [1, 2],
                columns={"i": i},
            )
        backend = VectorBackend()
        plan.run(backend)
        assert backend.vector_groups == 8
        assert backend.mega_batches == 1
        assert backend.vectorized_jobs == 16

    def test_mega_batch_off_is_one_launch_per_group(self):
        plan = SweepPlan()
        for i in range(4):
            plan.add_group(
                BinaryExponentialBackoff(initial_window=2.0 + i),
                batch_adversary(10),
                [1, 2],
                columns={"i": i},
            )
        backend = VectorBackend(mega_batch=False)
        plan.run(backend)
        assert backend.vector_groups == 4
        assert backend.mega_batches == 4

    def test_incompatible_families_split_launches(self):
        plan = SweepPlan()
        plan.add_group(BinaryExponentialBackoff(), batch_adversary(10), [1, 2])
        plan.add_group(FullSensingMultiplicativeWeights(), batch_adversary(10), [1, 2])
        plan.add_group(
            BinaryExponentialBackoff(),
            batch_adversary(10, factory(PeriodicJamming, period=3)),
            [1, 2],
        )
        backend = VectorBackend()
        plan.run(backend)
        assert backend.vector_groups == 3
        assert backend.mega_batches == 3

    def test_backend_results_identical_with_and_without_mega(self):
        plan = SweepPlan()
        for i in range(5):
            plan.add_group(
                LowSensingBackoff(params=LowSensingParameters(w_min=32.0 + 8 * i)),
                batch_adversary(12 + i),
                [1, 2],
                columns={"i": i},
            )
        mega = plan.run(VectorBackend(mega_batch=True)).results
        per_group = plan.run(VectorBackend(mega_batch=False)).results
        for a, b in zip(mega, per_group):
            assert identical(a, b)

    def test_mixed_with_mega_exclusion_keeps_job_order(self):
        plan = SweepPlan()
        plan.add_group(BinaryExponentialBackoff(), batch_adversary(10), [1, 2])
        plan.add_group(
            BinaryExponentialBackoff(initial_window=6.0), batch_adversary(10), [3]
        )
        plan.add_group(
            BinaryExponentialBackoff(),
            batch_adversary(10),
            [4],
            collect_trace=True,  # vectorizes, but in its own lockstep batch
        )
        backend = VectorBackend()
        results = plan.run(backend).results
        assert [r.seed for r in results] == [1, 2, 3, 4]
        # The two plain BEB groups stack; the trace-collecting group is
        # mega-excluded and gets its own launch.
        assert backend.mega_batches == 2
        assert backend.fallback_jobs == 0
        assert results[3].trace is not None

    def test_describe_reports_launch_counters(self):
        backend = VectorBackend()
        description = backend.describe()
        assert description["mega_batches"] == 0
        assert description["mega_batch"] is True


class TestStorageIdentityStability:
    def test_batch_signature_is_per_group_not_per_mega_batch(self):
        """Campaign units are per-group lockstep batches; mega-batching a
        sweep must neither change the per-group signatures nor the results
        filed under them."""
        groups = [
            group(BinaryExponentialBackoff(initial_window=2.0 + i), batch_adversary(10), [1, 2])
            for i in range(3)
        ]
        signatures = [batch_signature(specs) for specs in groups]
        assert len(set(signatures)) == 3
        mega = VectorSimulator.from_spec_groups(groups).run()
        # The results a campaign would store under each signature are the
        # per-group batch outputs — which the mega run reproduces exactly.
        offset = 0
        for specs in groups:
            solo = VectorSimulator.from_specs(specs).run()
            for expected in solo:
                assert identical(mega[offset], expected)
                offset += 1
        # And the signatures are a function of the specs alone, so they are
        # unchanged by how the backend chose to batch.
        assert signatures == [batch_signature(specs) for specs in groups]
