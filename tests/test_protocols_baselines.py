"""Unit tests for the baseline protocols (BEB, polynomial, ALOHA, sawtooth, MW)."""

from random import Random

import pytest

from repro.channel.feedback import Feedback, FeedbackReport
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol, SlottedAloha
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.protocols.sawtooth import SawtoothBackoff


def failed_send() -> FeedbackReport:
    return FeedbackReport(feedback=Feedback.NOISE, sent=True, succeeded=False)


def heard(feedback: Feedback) -> FeedbackReport:
    return FeedbackReport(feedback=feedback, sent=False)


class TestBinaryExponentialBackoff:
    def test_collision_doubles_window(self):
        state = BinaryExponentialBackoff(initial_window=2.0).new_packet_state()
        state.observe(failed_send(), Random(0))
        assert state.window == 4.0
        state.observe(failed_send(), Random(0))
        assert state.window == 8.0

    def test_never_listens(self):
        state = BinaryExponentialBackoff().new_packet_state()
        rng = Random(3)
        assert not any(state.decide(rng).is_listen for _ in range(5000))

    def test_oblivious_to_channel_feedback(self):
        state = BinaryExponentialBackoff().new_packet_state()
        before = state.window
        state.observe(heard(Feedback.NOISE), Random(0))
        state.observe(heard(Feedback.EMPTY), Random(0))
        assert state.window == before

    def test_window_cap(self):
        protocol = BinaryExponentialBackoff(initial_window=2.0, max_window=8.0)
        state = protocol.new_packet_state()
        for _ in range(10):
            state.observe(failed_send(), Random(0))
        assert state.window == 8.0

    def test_send_frequency_matches_window(self):
        state = BinaryExponentialBackoff(initial_window=4.0).new_packet_state()
        rng = Random(11)
        trials = 40_000
        sends = sum(1 for _ in range(trials) if state.decide(rng).is_send)
        assert sends == pytest.approx(trials / 4.0, rel=0.1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(initial_window=0.5)
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(backoff_factor=1.0)
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(initial_window=4.0, max_window=2.0)


class TestPolynomialBackoff:
    def test_window_grows_polynomially_with_collisions(self):
        protocol = PolynomialBackoff(initial_window=2.0, degree=2.0)
        state = protocol.new_packet_state()
        assert state.window == 2.0
        state.observe(failed_send(), Random(0))
        assert state.window == 2.0 * 4  # (1+1)^2
        state.observe(failed_send(), Random(0))
        assert state.window == 2.0 * 9  # (2+1)^2

    def test_successful_send_does_not_increase_collisions(self):
        state = PolynomialBackoff().new_packet_state()
        report = FeedbackReport(feedback=Feedback.SUCCESS, sent=True, succeeded=True)
        state.observe(report, Random(0))
        assert state.collisions == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PolynomialBackoff(degree=0.0)
        with pytest.raises(ValueError):
            PolynomialBackoff(initial_window=0.0)


class TestFixedProbability:
    def test_probability_never_changes(self):
        state = FixedProbabilityProtocol(probability=0.2).new_packet_state()
        state.observe(failed_send(), Random(0))
        state.observe(heard(Feedback.EMPTY), Random(0))
        assert state.sending_probability() == 0.2

    def test_send_frequency(self):
        state = FixedProbabilityProtocol(probability=0.1).new_packet_state()
        rng = Random(2)
        trials = 40_000
        sends = sum(1 for _ in range(trials) if state.decide(rng).is_send)
        assert sends == pytest.approx(trials * 0.1, rel=0.1)

    def test_tuned_for_batch(self):
        protocol = FixedProbabilityProtocol.tuned_for(50)
        assert protocol.probability == pytest.approx(1.0 / 50.0)

    def test_tuned_for_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedProbabilityProtocol.tuned_for(0)

    def test_slotted_aloha_default(self):
        assert SlottedAloha().name == "slotted-aloha"
        assert 0.0 < SlottedAloha().probability <= 1.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FixedProbabilityProtocol(probability=0.0)
        with pytest.raises(ValueError):
            FixedProbabilityProtocol(probability=1.5)


class TestSawtooth:
    def test_window_halves_down_the_ramp(self):
        protocol = SawtoothBackoff(initial_window=16.0)
        state = protocol.new_packet_state()
        rng = Random(0)
        # Spend enough (non-success) slots to trigger at least one halving.
        for _ in range(20):
            state.observe(heard(Feedback.NOISE), rng)
        assert state.window < 16.0

    def test_phase_doubles_after_ramp_bottom(self):
        protocol = SawtoothBackoff(initial_window=4.0)
        state = protocol.new_packet_state()
        rng = Random(0)
        for _ in range(50):
            state.observe(heard(Feedback.NOISE), rng)
        assert state.phase_window >= 8.0

    def test_never_listens(self):
        state = SawtoothBackoff().new_packet_state()
        rng = Random(1)
        assert not any(state.decide(rng).is_listen for _ in range(2000))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SawtoothBackoff(initial_window=1.0)


class TestFullSensingMW:
    def test_always_accesses_channel(self):
        state = FullSensingMultiplicativeWeights().new_packet_state()
        rng = Random(9)
        assert all(state.decide(rng).accesses_channel for _ in range(2000))

    def test_silence_increases_probability(self):
        state = FullSensingMultiplicativeWeights(initial_probability=0.1).new_packet_state()
        state.observe(heard(Feedback.EMPTY), Random(0))
        assert state.probability > 0.1

    def test_noise_decreases_probability(self):
        state = FullSensingMultiplicativeWeights(initial_probability=0.1).new_packet_state()
        state.observe(heard(Feedback.NOISE), Random(0))
        assert state.probability < 0.1

    def test_probability_clamped_to_bounds(self):
        protocol = FullSensingMultiplicativeWeights(
            initial_probability=0.4, p_min=0.01, p_max=0.5
        )
        state = protocol.new_packet_state()
        rng = Random(0)
        for _ in range(200):
            state.observe(heard(Feedback.EMPTY), rng)
        assert state.probability <= 0.5
        for _ in range(2000):
            state.observe(heard(Feedback.NOISE), rng)
        assert state.probability >= 0.01

    def test_other_packets_success_changes_nothing(self):
        state = FullSensingMultiplicativeWeights(initial_probability=0.2).new_packet_state()
        state.observe(heard(Feedback.SUCCESS), Random(0))
        assert state.probability == 0.2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FullSensingMultiplicativeWeights(increase=1.0)
        with pytest.raises(ValueError):
            FullSensingMultiplicativeWeights(p_min=0.5, p_max=0.1)
        with pytest.raises(ValueError):
            FullSensingMultiplicativeWeights(initial_probability=0.9, p_max=0.5)
