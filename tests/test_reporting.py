"""Tests for experiment-report rendering and the reporting CLI plumbing."""

import pytest

from repro.experiments.reporting import _ordered_columns, main, render_report
from repro.experiments.spec import ExperimentReport, ExperimentSpec


def make_report() -> ExperimentReport:
    spec = ExperimentSpec(
        exp_id="EX",
        title="Example experiment",
        claim="Something holds.",
        bench_target="benchmarks/bench_example.py",
    )
    report = ExperimentReport(spec=spec)
    report.add_row({"protocol": "low-sensing", "n": 100, "throughput": 0.3, "zzz": 1})
    report.add_row({"protocol": "beb", "n": 100, "throughput": 0.1, "zzz": 2})
    report.verdicts["who_wins"] = "low-sensing"
    report.notes.append("smoke scale")
    return report


class TestRenderReport:
    def test_contains_header_claim_and_rows(self):
        rendered = render_report(make_report())
        assert "== EX: Example experiment ==" in rendered
        assert "Something holds." in rendered
        assert "low-sensing" in rendered and "beb" in rendered

    def test_contains_verdicts_and_notes(self):
        rendered = render_report(make_report())
        assert "who_wins: low-sensing" in rendered
        assert "smoke scale" in rendered

    def test_empty_report_renders_placeholder(self):
        spec = ExperimentSpec("EY", "t", "c", "b")
        rendered = render_report(ExperimentReport(spec=spec))
        assert "(no rows)" in rendered

    def test_preferred_columns_come_first_and_unknown_columns_last(self):
        columns = _ordered_columns(make_report())
        assert columns[0] == "protocol"
        assert columns.index("throughput") < columns.index("zzz")
        assert set(columns) == {"protocol", "n", "throughput", "zzz"}


class TestCli:
    def test_unknown_experiment_id_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["NOT-AN-EXPERIMENT", "--scale", "smoke"])

    def test_invalid_scale_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["E1", "--scale", "galactic"])
