"""Tests for contention and the Lemma 5.1–5.3 probability bounds."""

import math
from random import Random

import pytest

from repro.core.contention import (
    ContentionRegime,
    classify_contention,
    contention,
    empty_probability_bounds,
    noisy_probability_lower_bound,
    success_probability_bounds,
)


class TestContention:
    def test_contention_is_sum_of_probabilities(self):
        assert contention([0.5, 0.25, 0.25]) == pytest.approx(1.0)

    def test_empty_system_has_zero_contention(self):
        assert contention([]) == 0.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            contention([0.5, 1.5])
        with pytest.raises(ValueError):
            contention([-0.1])


class TestRegimes:
    def test_low_good_high(self):
        assert classify_contention(0.001) is ContentionRegime.LOW
        assert classify_contention(1.0) is ContentionRegime.GOOD
        assert classify_contention(10.0) is ContentionRegime.HIGH

    def test_boundaries_are_good(self):
        assert classify_contention(1.0 / 64.0) is ContentionRegime.GOOD
        assert classify_contention(4.0) is ContentionRegime.GOOD

    def test_custom_thresholds(self):
        assert classify_contention(0.5, c_low=0.6, c_high=2.0) is ContentionRegime.LOW

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            classify_contention(1.0, c_low=2.0, c_high=1.0)

    def test_negative_contention_rejected(self):
        with pytest.raises(ValueError):
            classify_contention(-1.0)


class TestLemmaBounds:
    def test_success_bounds_order(self):
        for c in (0.1, 0.5, 1.0, 2.0, 5.0):
            low, high = success_probability_bounds(c)
            assert 0.0 <= low <= high <= 1.0

    def test_empty_bounds_order(self):
        for c in (0.0, 0.5, 1.0, 3.0):
            low, high = empty_probability_bounds(c)
            assert 0.0 < low <= high <= 1.0

    def test_noisy_bound_is_a_probability(self):
        for c in (0.0, 1.0, 5.0, 20.0):
            assert 0.0 <= noisy_probability_lower_bound(c) <= 1.0

    def test_noisy_bound_grows_with_contention(self):
        assert noisy_probability_lower_bound(8.0) > noisy_probability_lower_bound(1.0)

    def test_bounds_reject_negative_contention(self):
        with pytest.raises(ValueError):
            success_probability_bounds(-0.1)
        with pytest.raises(ValueError):
            empty_probability_bounds(-0.1)
        with pytest.raises(ValueError):
            noisy_probability_lower_bound(-0.1)

    def test_empirical_slot_outcomes_respect_lemma_bounds(self):
        """Monte-Carlo check of Lemmas 5.1–5.3 for a concrete window vector."""
        rng = Random(5)
        windows = [32.0, 64.0, 50.0, 40.0, 128.0]
        c = sum(1.0 / w for w in windows)
        trials = 40_000
        empty = success = 0
        for _ in range(trials):
            senders = sum(1 for w in windows if rng.random() < 1.0 / w)
            if senders == 0:
                empty += 1
            elif senders == 1:
                success += 1
        p_empty = empty / trials
        p_success = success / trials
        p_noisy = 1.0 - p_empty - p_success
        success_low, success_high = success_probability_bounds(c)
        empty_low, empty_high = empty_probability_bounds(c)
        margin = 0.02
        assert success_low - margin <= p_success <= success_high + margin
        assert empty_low - margin <= p_empty <= empty_high + margin
        assert p_noisy >= noisy_probability_lower_bound(c) - margin

    def test_success_probability_peaks_near_contention_one(self):
        lower_at_one = success_probability_bounds(1.0)[0]
        assert lower_at_one == pytest.approx(math.exp(-2.0), rel=1e-6)
        assert lower_at_one > success_probability_bounds(8.0)[1]
