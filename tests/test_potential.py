"""Tests for the potential function Φ(t) and interval sizing."""

import math

import pytest

from repro.core.potential import (
    PotentialCoefficients,
    PotentialTracker,
    h_term,
    interval_length,
    l_term,
)


class TestCoefficients:
    def test_defaults_respect_ordering(self):
        coefficients = PotentialCoefficients()
        assert coefficients.alpha1 > coefficients.alpha2 > coefficients.alpha3 > 0.0

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            PotentialCoefficients(alpha1=1.0, alpha2=2.0, alpha3=0.5)
        with pytest.raises(ValueError):
            PotentialCoefficients(alpha1=3.0, alpha2=2.0, alpha3=0.0)


class TestTerms:
    def test_h_term_formula(self):
        windows = [32.0, 64.0]
        expected = 1.0 / math.log(32.0) + 1.0 / math.log(64.0)
        assert h_term(windows) == pytest.approx(expected)

    def test_h_term_empty(self):
        assert h_term([]) == 0.0

    def test_h_term_rejects_small_windows(self):
        with pytest.raises(ValueError):
            h_term([1.0])

    def test_l_term_uses_largest_window(self):
        windows = [32.0, 500.0, 64.0]
        expected = 500.0 / math.log(500.0) ** 2
        assert l_term(windows) == pytest.approx(expected)

    def test_l_term_empty_is_zero(self):
        assert l_term([]) == 0.0


class TestIntervalLength:
    def test_sqrt_n_dominates_for_many_small_windows(self):
        windows = [32.0] * 400
        # L(t) = 32/ln^2(32) ≈ 2.66 < sqrt(400) = 20.
        assert interval_length(windows) == 20

    def test_large_window_dominates(self):
        windows = [32.0, 10_000.0]
        expected = math.ceil(10_000.0 / math.log(10_000.0) ** 2)
        assert interval_length(windows) == expected

    def test_scaling_by_c_interval(self):
        windows = [32.0] * 100
        assert interval_length(windows, c_interval=2.0) == 5

    def test_empty_system_has_minimum_interval(self):
        assert interval_length([]) == 1

    def test_invalid_c_interval(self):
        with pytest.raises(ValueError):
            interval_length([32.0], c_interval=0.0)


class TestTracker:
    def test_inactive_slot_has_zero_potential(self):
        tracker = PotentialTracker()
        sample = tracker.record(0, [])
        assert sample.potential == 0.0
        assert sample.num_packets == 0

    def test_potential_combines_three_terms(self):
        coefficients = PotentialCoefficients(alpha1=4.0, alpha2=2.0, alpha3=1.0)
        tracker = PotentialTracker(coefficients)
        windows = [32.0, 64.0]
        sample = tracker.record(0, windows)
        expected = 4.0 * 2 + 2.0 * h_term(windows) + 1.0 * l_term(windows)
        assert sample.potential == pytest.approx(expected)

    def test_contention_recorded(self):
        tracker = PotentialTracker()
        sample = tracker.record(0, [32.0, 32.0])
        assert sample.contention == pytest.approx(2.0 / 32.0)

    def test_series_and_max(self):
        tracker = PotentialTracker()
        tracker.record(0, [32.0] * 10)
        tracker.record(1, [32.0] * 5)
        tracker.record(2, [])
        series = tracker.potential_series()
        assert len(series) == 3
        assert series[0] > series[1] > series[2] == 0.0
        assert tracker.max_potential() == series[0]

    def test_interval_drifts_on_shrinking_system(self):
        tracker = PotentialTracker()
        # Simulate a system that loses one packet per slot.
        for slot in range(30):
            tracker.record(slot, [32.0] * (30 - slot))
        drifts = tracker.interval_drifts()
        assert drifts, "expected at least one analysis interval"
        assert all(length >= 1 for _, length, _ in drifts)
        assert all(drift < 0.0 for _, _, drift in drifts)
        assert tracker.fraction_negative_drift() == 1.0

    def test_fraction_negative_drift_empty_tracker(self):
        assert PotentialTracker().fraction_negative_drift() == 0.0
