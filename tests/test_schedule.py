"""Tests for the schedule DSL and the scheduled adversary adapters."""

from __future__ import annotations

from random import Random

import pytest

from repro.adversary.arrivals import (
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
)
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    BernoulliJamming,
    BurstJamming,
    Jammer,
    NoJamming,
    PeriodicJamming,
    ReactiveTargetedJammer,
)
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.scenarios.schedule import Phase, Schedule
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def view_at(slot: int, active: tuple = ()) -> SystemView:
    return SystemView(slot=slot, active_packets=active)


class TestPhase:
    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            Phase(NoArrivals(), 0)
        with pytest.raises(ValueError):
            Phase(NoArrivals(), -5)

    def test_rejects_non_integer_duration(self):
        with pytest.raises(ValueError):
            Phase(NoArrivals(), 2.5)  # type: ignore[arg-type]

    def test_open_ended_duration_allowed(self):
        assert Phase(NoArrivals()).duration is None

    def test_describe_includes_component(self):
        description = Phase(BatchArrivals(3), 10).describe()
        assert description["duration"] == 10
        assert description["component"]["type"] == "BatchArrivals"


class TestSchedule:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            Schedule([])

    def test_open_ended_only_last(self):
        with pytest.raises(ValueError):
            Schedule([Phase(NoArrivals()), Phase(NoArrivals(), 5)])

    def test_phase_at_walks_boundaries(self):
        schedule = Schedule([Phase(NoArrivals(), 3), Phase(NoArrivals(), 2), Phase(NoArrivals())])
        assert schedule.phase_at(0) == (0, 0)
        assert schedule.phase_at(2) == (0, 2)
        assert schedule.phase_at(3) == (1, 0)
        assert schedule.phase_at(4) == (1, 1)
        assert schedule.phase_at(5) == (2, 0)
        assert schedule.phase_at(1000) == (2, 995)

    def test_phase_at_past_finite_end_is_none(self):
        schedule = Schedule([Phase(NoArrivals(), 3), Phase(NoArrivals(), 2)])
        assert schedule.total_duration == 5
        assert schedule.phase_at(4) == (1, 1)
        assert schedule.phase_at(5) is None
        assert schedule.phase_at(50) is None

    def test_phase_at_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            Schedule([Phase(NoArrivals())]).phase_at(-1)

    def test_segments_split_along_phases(self):
        schedule = Schedule(
            [Phase(NoArrivals(), 10), Phase(NoArrivals(), 5), Phase(NoArrivals())]
        )
        assert list(schedule.segments(0, 20)) == [
            (0, 0, 0, 10),
            (1, 0, 10, 5),
            (2, 0, 15, 5),
        ]
        # A range starting mid-phase uses phase-local starts.
        assert list(schedule.segments(8, 4)) == [(0, 8, 0, 2), (1, 0, 2, 2)]

    def test_segments_truncate_past_finite_end(self):
        schedule = Schedule([Phase(NoArrivals(), 4)])
        assert list(schedule.segments(2, 10)) == [(0, 2, 0, 2)]
        assert list(schedule.segments(6, 10)) == []


class TestScheduledArrivals:
    def test_requires_arrival_components(self):
        with pytest.raises(TypeError):
            ScheduledArrivals(Phase(NoJamming(), 5))

    def test_phases_fire_on_their_local_clock(self, rng):
        arrivals = ScheduledArrivals(
            Phase(BatchArrivals(10), 5),
            Phase(BatchArrivals(20, slot=2), 10),
            Phase(NoArrivals()),
        )
        counts = [arrivals.arrivals(view_at(slot), rng) for slot in range(20)]
        assert counts[0] == 10
        assert counts[7] == 20  # slot 2 of the second phase, which starts at 5
        assert sum(counts) == 30

    def test_burst_cadence_rebases_to_phase_start(self, rng):
        arrivals = ScheduledArrivals(
            Phase(NoArrivals(), 100),
            Phase(PeriodicBurstArrivals(burst_size=3, period=10), 30),
            Phase(NoArrivals()),
        )
        firing = [
            slot for slot in range(140) if arrivals.arrivals(view_at(slot), rng) > 0
        ]
        assert firing == [100, 110, 120]

    def test_finite_schedule_truncates_open_processes(self, rng):
        # The burst process itself is endless; the phase cuts it off.
        arrivals = ScheduledArrivals(
            Phase(PeriodicBurstArrivals(burst_size=2, period=5), 12),
            Phase(NoArrivals()),
        )
        assert not arrivals.exhausted(7)
        assert arrivals.exhausted(12)
        assert [arrivals.arrivals(view_at(slot), rng) for slot in range(20)] == [
            2, 0, 0, 0, 0, 2, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]

    def test_exhausted_sees_future_phases(self):
        arrivals = ScheduledArrivals(
            Phase(BatchArrivals(5), 10),
            Phase(BatchArrivals(7), 10),
            Phase(NoArrivals()),
        )
        assert not arrivals.exhausted(0)
        assert not arrivals.exhausted(5)  # batch in phase 2 still pending
        assert arrivals.exhausted(11)
        assert arrivals.total_planned() == 12

    def test_total_planned_none_when_any_phase_unbounded(self):
        arrivals = ScheduledArrivals(
            Phase(PoissonArrivals(0.1), 10), Phase(NoArrivals())
        )
        assert arrivals.total_planned() is None

    def test_oblivious_iff_all_phases_are(self):
        assert ScheduledArrivals(Phase(BatchArrivals(1))).oblivious
        class Custom(BatchArrivals):
            oblivious = False
        assert not ScheduledArrivals(Phase(Custom(1))).oblivious

    def test_describe_nests_phase_descriptions(self):
        description = ScheduledArrivals(Phase(BatchArrivals(4), 6)).describe()
        assert description["type"] == "ScheduledArrivals"
        phases = description["schedule"]["phases"]
        assert phases[0]["component"]["type"] == "BatchArrivals"
        assert phases[0]["duration"] == 6

    def test_accepts_a_prebuilt_schedule(self, rng):
        schedule = Schedule([Phase(BatchArrivals(2), 4), Phase(NoArrivals())])
        arrivals = ScheduledArrivals(schedule)
        assert arrivals.arrivals(view_at(0), rng) == 2


class TestScheduledJamming:
    def test_requires_jammer_components(self):
        with pytest.raises(TypeError):
            ScheduledJamming(Phase(BatchArrivals(1), 5))

    def test_phase_transitions_and_local_clock(self, rng):
        jamming = ScheduledJamming(
            Phase(PeriodicJamming(period=2), 6),
            Phase(NoJamming(), 4),
            Phase(BurstJamming(start=0, length=2)),
        )
        decisions = [jamming.jam(view_at(slot), rng) for slot in range(15)]
        assert decisions == [
            True, False, True, False, True, False,  # periodic phase
            False, False, False, False,             # silent phase
            True, True, False, False, False,        # burst at the phase start
        ]
        assert jamming.jams_used() == 5

    def test_past_finite_schedule_never_jams(self, rng):
        jamming = ScheduledJamming(Phase(PeriodicJamming(period=1), 3))
        assert [jamming.jam(view_at(slot), rng) for slot in range(6)] == [
            True, True, True, False, False, False,
        ]

    def test_reactive_phase_marks_adapter_reactive(self, rng):
        jamming = ScheduledJamming(
            Phase(NoJamming(), 5),
            Phase(ReactiveTargetedJammer(budget=None, target_index=0)),
        )
        assert jamming.reactive
        view = view_at(2, active=(0,))
        assert not jamming.reactive_jam(view, (0,), rng)  # non-reactive phase
        view = view_at(7, active=(0,))
        assert jamming.reactive_jam(view, (0,), rng)

    def test_oblivious_and_contention_flags(self):
        assert ScheduledJamming(Phase(PeriodicJamming(2))).oblivious
        gated = ScheduledJamming(Phase(BernoulliJamming(0.5, only_active=True)))
        assert not gated.oblivious
        assert not gated.reactive


class TestEngineIntegration:
    def test_single_phase_schedule_is_bit_identical_to_bare_process(self):
        def run(adversary):
            config = SimulationConfig(
                protocol=BinaryExponentialBackoff(),
                adversary=adversary,
                seed=99,
                max_slots=20_000,
            )
            return Simulator(config).run()

        bare = run(CompositeAdversary(BatchArrivals(30), PeriodicJamming(7)))
        scheduled = run(
            CompositeAdversary(
                ScheduledArrivals(Phase(BatchArrivals(30))),
                ScheduledJamming(Phase(PeriodicJamming(7))),
            )
        )
        assert bare.collector.backlog_series == scheduled.collector.backlog_series
        assert [(p.packet_id, p.departure_slot, p.sends) for p in bare.packets] == [
            (p.packet_id, p.departure_slot, p.sends) for p in scheduled.packets
        ]

    def test_phase_boundary_changes_behaviour_mid_run(self):
        # Jam every slot for 50 slots, then stop: the jammed prefix must
        # show zero successes and the suffix must drain the batch.
        config = SimulationConfig(
            protocol=BinaryExponentialBackoff(),
            adversary=CompositeAdversary(
                BatchArrivals(10),
                ScheduledJamming(
                    Phase(BernoulliJamming(1.0, only_active=False), 50),
                    Phase(NoJamming()),
                ),
            ),
            seed=5,
            max_slots=50_000,
        )
        result = Simulator(config).run()
        assert result.drained
        successes = result.collector.cumulative_successes
        assert successes[49] == 0
        assert result.collector.num_jammed == 50

    def test_fast_path_fail_loud_passes_through_shifted_view(self):
        class Peeking(Jammer):
            oblivious = True  # lies: it reads per-packet state

            def jam(self, view, rng):
                return len(view.active_packets) > 0

        adversary = CompositeAdversary(
            BatchArrivals(3),
            ScheduledJamming(Phase(NoJamming(), 2), Phase(Peeking())),
        )
        assert adversary.oblivious  # engine will take the fast path
        config = SimulationConfig(
            protocol=BinaryExponentialBackoff(),
            adversary=adversary,
            seed=1,
            max_slots=100,
        )
        simulator = Simulator(config)
        with pytest.raises(RuntimeError, match="oblivious"):
            simulator.run()
