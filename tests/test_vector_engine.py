"""Tests for the lockstep batch engine (`repro.sim.vector`)."""

from __future__ import annotations

import copy

import pytest

from repro.adversary.arrivals import (
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
)
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    BernoulliJamming,
    BurstJamming,
    NoJamming,
    PeriodicJamming,
)
from repro.core.low_sensing import LowSensingBackoff
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.vector import VectorSimulator
from repro.sim.vector.support import adversary_support, protocol_support

ALWAYS_SEND = FixedProbabilityProtocol(probability=1.0)

COLLECTOR_FIELDS = (
    "num_slots",
    "num_active_slots",
    "num_arrivals",
    "num_successes",
    "num_collisions",
    "num_empty_active",
    "num_jammed",
    "num_jammed_active",
    "total_sends",
    "total_listens",
)


def scalar_run(protocol, arrivals, jammer, seed, max_slots=60):
    config = SimulationConfig(
        protocol=protocol,
        adversary=CompositeAdversary(arrivals, jammer),
        seed=seed,
        max_slots=max_slots,
    )
    return Simulator(config).run()


def assert_identical(vector_result, scalar_result):
    """Exact equality of everything both engines report."""
    assert vector_result.num_slots == scalar_result.num_slots
    assert vector_result.drained == scalar_result.drained
    for field in COLLECTOR_FIELDS:
        assert getattr(vector_result.collector, field) == getattr(
            scalar_result.collector, field
        ), field
    assert (
        vector_result.collector.backlog_series
        == scalar_result.collector.backlog_series
    )
    assert (
        vector_result.collector.cumulative_arrivals
        == scalar_result.collector.cumulative_arrivals
    )
    assert (
        vector_result.collector.cumulative_successes
        == scalar_result.collector.cumulative_successes
    )
    assert packet_tuples(vector_result) == packet_tuples(scalar_result)


def packet_tuples(result):
    return [
        (p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens)
        for p in result.packets
    ]


class TestDeterministicWorkloadsMatchScalarExactly:
    """With p=1 every decision is deterministic, so the two engines must
    agree bit-for-bit — this pins the slot semantics (injection order,
    channel rules, drain condition, metric accounting) independently of the
    random-stream layout."""

    @pytest.mark.parametrize(
        "arrivals,jammer",
        [
            (BatchArrivals(1), NoJamming()),
            (BatchArrivals(3), NoJamming()),
            (BatchArrivals(2), PeriodicJamming(period=2)),
            (BatchArrivals(2), PeriodicJamming(period=3, budget=4)),
            (BatchArrivals(2), BurstJamming(start=5, length=4)),
            (BatchArrivals(2), BurstJamming(start=2, length=2, period=6, budget=3)),
            (NoArrivals(), NoJamming()),
            (PeriodicBurstArrivals(burst_size=1, period=7, num_bursts=3), NoJamming()),
        ],
    )
    def test_bit_identical_to_scalar(self, arrivals, jammer):
        vector_result = VectorSimulator(
            ALWAYS_SEND,
            copy.deepcopy(arrivals),
            copy.deepcopy(jammer),
            seeds=[5],
            max_slots=60,
        ).run()[0]
        assert_identical(vector_result, scalar_run(ALWAYS_SEND, arrivals, jammer, 5))

    def test_single_packet_succeeds_at_slot_zero(self):
        result = VectorSimulator(
            ALWAYS_SEND, BatchArrivals(1), NoJamming(), seeds=[0]
        ).run()[0]
        assert result.num_slots == 1
        assert result.drained
        assert result.packets[0].departure_slot == 0
        assert result.packets[0].sends == 1

    def test_no_arrivals_drains_immediately(self):
        result = VectorSimulator(
            ALWAYS_SEND, NoArrivals(), NoJamming(), seeds=[0]
        ).run()[0]
        assert result.num_slots == 0
        assert result.drained
        assert result.packets == []
        assert result.collector.backlog_series == []


class TestDeterminismOfVectorRuns:
    def test_repeat_runs_bit_identical(self):
        def run_batch():
            return VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(40),
                BernoulliJamming(probability=0.05, budget=10),
                seeds=[11, 23, 47],
            ).run()

        for first, second in zip(run_batch(), run_batch()):
            assert first.collector.backlog_series == second.collector.backlog_series
            assert packet_tuples(first) == packet_tuples(second)
            for field in COLLECTOR_FIELDS:
                assert getattr(first.collector, field) == getattr(
                    second.collector, field
                )

    def test_replications_are_independent_of_batch_order(self):
        # Results come back in seed order, each replication keyed by its
        # own seed's streams.
        forward = VectorSimulator(
            PolynomialBackoff(), BatchArrivals(20), NoJamming(), seeds=[1, 2]
        ).run()
        assert [r.seed for r in forward] == [1, 2]
        assert forward[0].collector.backlog_series != forward[1].collector.backlog_series

    def test_num_slots_vary_per_replication(self):
        results = VectorSimulator(
            FixedProbabilityProtocol.tuned_for(30),
            BatchArrivals(30),
            NoJamming(),
            seeds=list(range(6)),
        ).run()
        assert len({r.num_slots for r in results}) > 1
        assert all(r.drained for r in results)


class TestInvariants:
    @pytest.mark.parametrize(
        "protocol,arrivals,jammer",
        [
            (BinaryExponentialBackoff(), BatchArrivals(50), NoJamming()),
            (
                BinaryExponentialBackoff(max_window=64.0),
                BatchArrivals(30),
                PeriodicJamming(period=5, budget=20),
            ),
            (
                PolynomialBackoff(),
                PeriodicBurstArrivals(burst_size=5, period=40, num_bursts=4),
                BurstJamming(start=10, length=5),
            ),
            (
                FixedProbabilityProtocol(probability=0.08),
                PoissonArrivals(rate=0.03, horizon=1500),
                BernoulliJamming(probability=0.05, budget=25, only_active=True),
            ),
        ],
    )
    def test_conservation_and_consistency(self, protocol, arrivals, jammer):
        results = VectorSimulator(
            protocol, arrivals, jammer, seeds=[3, 7, 13], max_slots=30_000
        ).run()
        for result in results:
            collector = result.collector
            assert collector.num_arrivals == len(result.packets)
            assert collector.num_successes == sum(
                1 for p in result.packets if p.departed
            )
            assert collector.total_sends == sum(p.sends for p in result.packets)
            assert collector.total_listens == 0
            assert collector.backlog == collector.num_arrivals - collector.num_successes
            assert len(collector.backlog_series) == result.num_slots
            if result.num_slots:
                assert collector.cumulative_arrivals[-1] == collector.num_arrivals
                assert collector.cumulative_successes[-1] == collector.num_successes
                assert (
                    collector.cumulative_active_slots[-1]
                    == collector.num_active_slots
                )
            budget = getattr(jammer, "budget", None)
            if budget is not None:
                assert collector.num_jammed <= budget
            for packet in result.packets:
                if packet.departed:
                    assert packet.departure_slot >= packet.arrival_slot
                    assert packet.sends >= 1

    def test_capacity_growth_is_deterministic(self):
        # Poisson arrivals exceed the initial capacity guess and force the
        # state arrays to grow mid-run; growth must not break determinism.
        def run_batch():
            return VectorSimulator(
                BinaryExponentialBackoff(),
                PoissonArrivals(rate=0.2, horizon=1200),
                NoJamming(),
                seeds=[1, 2, 3],
                max_slots=10_000,
            ).run()

        first, second = run_batch(), run_batch()
        totals = [r.num_arrivals for r in first]
        assert max(totals) > 64  # the initial open-ended capacity guess
        for a, b in zip(first, second):
            assert packet_tuples(a) == packet_tuples(b)

    def test_max_slots_cap_without_drain(self):
        results = VectorSimulator(
            ALWAYS_SEND, BatchArrivals(2), NoJamming(), seeds=[1], max_slots=25
        ).run()
        assert results[0].num_slots == 25
        assert not results[0].drained
        assert results[0].collector.num_collisions == 25

    def test_stop_when_drained_false_runs_to_cap(self):
        results = VectorSimulator(
            ALWAYS_SEND,
            BatchArrivals(1),
            NoJamming(),
            seeds=[1],
            max_slots=30,
            stop_when_drained=False,
        ).run()
        assert results[0].num_slots == 30
        assert results[0].drained


class TestValidationAndSupport:
    def test_rejects_empty_seed_list(self):
        with pytest.raises(ValueError, match="seed"):
            VectorSimulator(ALWAYS_SEND, BatchArrivals(1), NoJamming(), seeds=[])

    def test_rejects_unsupported_protocol(self):
        class CustomProtocol(BinaryExponentialBackoff):
            """Subclass without a registered kernel: must stay scalar."""

        with pytest.raises(ValueError, match="cannot vectorize"):
            VectorSimulator(CustomProtocol(), BatchArrivals(1), NoJamming(), seeds=[1])

    def test_protocol_support_flags(self):
        from repro.core.low_sensing import DecoupledLowSensingBackoff
        from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
        from repro.protocols.sawtooth import SawtoothBackoff

        assert protocol_support(BinaryExponentialBackoff()) is None
        assert protocol_support(PolynomialBackoff()) is None
        assert protocol_support(FixedProbabilityProtocol()) is None
        # The sensing tier has kernels since the sensing-vector work.
        assert protocol_support(LowSensingBackoff()) is None
        assert protocol_support(DecoupledLowSensingBackoff()) is None
        assert protocol_support(SawtoothBackoff()) is None
        assert protocol_support(FullSensingMultiplicativeWeights()) is None

    def test_subclass_of_supported_protocol_is_rejected(self):
        class Tweaked(BinaryExponentialBackoff):
            pass

        assert protocol_support(Tweaked()) is not None

    def test_adversary_support(self):
        assert adversary_support(CompositeAdversary(BatchArrivals(1), NoJamming())) is None
        # Feedback-coupled jammers vectorize via the lockstep feedback loop.
        from repro.adversary.jamming import ReactiveSuccessJammer

        assert (
            adversary_support(
                CompositeAdversary(BatchArrivals(1), ReactiveSuccessJammer(budget=1))
            )
            is None
        )

        class CustomJammer(NoJamming):
            pass

        reason = adversary_support(
            CompositeAdversary(BatchArrivals(1), CustomJammer())
        )
        assert reason is not None and "no vector kernel" in reason

    def test_from_specs_rejects_heterogeneous_batches(self):
        from repro.experiments.plan import RunSpec, factory

        adversary = factory(CompositeAdversary, factory(BatchArrivals, 5))
        mixed = [
            RunSpec(protocol=BinaryExponentialBackoff(), adversary=adversary, seed=1),
            RunSpec(protocol=PolynomialBackoff(), adversary=adversary, seed=2),
        ]
        with pytest.raises(ValueError, match="one configuration"):
            VectorSimulator.from_specs(mixed)

    def test_trace_and_potential_vectorize_but_exclude_mega_batching(self):
        from repro.experiments.plan import RunSpec, factory
        from repro.sim.vector.support import mega_batch_exclusion

        adversary = factory(CompositeAdversary, factory(BatchArrivals, 5))
        ok = RunSpec(protocol=ALWAYS_SEND, adversary=adversary, seed=1)
        assert ok.vector_support() is None
        assert mega_batch_exclusion(ok) is None
        traced = RunSpec(
            protocol=ALWAYS_SEND, adversary=adversary, seed=1, collect_trace=True
        )
        assert traced.vector_support() is None
        assert "mega-batch" in mega_batch_exclusion(traced)
        tracked = RunSpec(
            protocol=ALWAYS_SEND, adversary=adversary, seed=1, collect_potential=True
        )
        assert tracked.vector_support() is None
        assert "mega-batch" in mega_batch_exclusion(tracked)


class TestStatisticalAgreementSpotChecks:
    """Cheap distribution-level sanity checks; the rigorous comparison
    lives in test_vector_equivalence.py."""

    def test_beb_mean_accesses_close_to_scalar(self):
        seeds = list(range(8))
        vector_results = VectorSimulator(
            BinaryExponentialBackoff(), BatchArrivals(50), NoJamming(), seeds=seeds
        ).run()
        scalar_results = [
            scalar_run(
                BinaryExponentialBackoff(),
                BatchArrivals(50),
                NoJamming(),
                seed,
                max_slots=200_000,
            )
            for seed in seeds
        ]
        vector_mean = sum(
            r.energy_statistics().mean_accesses for r in vector_results
        ) / len(seeds)
        scalar_mean = sum(
            r.energy_statistics().mean_accesses for r in scalar_results
        ) / len(seeds)
        assert vector_mean == pytest.approx(scalar_mean, rel=0.2)

    def test_all_packets_delivered_on_batch(self):
        results = VectorSimulator(
            BinaryExponentialBackoff(), BatchArrivals(60), NoJamming(), seeds=[1, 2]
        ).run()
        for result in results:
            assert result.drained
            assert all(p.departed for p in result.packets)
